#include "core/async_protocol.hpp"

#include <memory>

#include "core/payloads.hpp"
#include "core/runner.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler.hpp"
#include "support/math_util.hpp"

namespace rfc::core {
namespace {

/// A vote in the sequential model carries its own voting-round index (the
/// receiver has no global clock to infer it from); travels inline as
/// (value, round_index).
sim::Payload make_async_vote_payload(std::uint64_t value,
                                     std::uint32_t round_index,
                                     const ProtocolParams& params) noexcept {
  return sim::Payload::inline_words(
      kAsyncVotePayloadTag,
      static_cast<std::uint64_t>(params.value_bits()) + params.round_bits(),
      value, round_index);
}

/// Composite pull reply: the servee cannot know whether the puller is
/// auditing (wants H) or broadcasting (wants CE_min), so it sends both.
/// This costs a constant-factor message inflation over the synchronous
/// protocol — part of the price of the sequential model.
struct AsyncReply {
  VoteIntention intention;
  bool has_cert = false;
  Certificate cert;
};

sim::Payload make_async_reply_payload(rfc::support::Arena* arena,
                                      const VoteIntention& intention,
                                      const Certificate* min_cert,
                                      const ProtocolParams& params) {
  const bool has_cert = min_cert != nullptr;
  const std::uint64_t bits =
      intention.size() * (static_cast<std::uint64_t>(params.value_bits()) +
                          params.label_bits()) +
      1 + (has_cert ? min_cert->bit_size(params) : 0);
  // Transient by construction: the reply is consumed by the puller's
  // on_pull_reply within the same activation, so the round arena owns it.
  return sim::Payload::make_boxed_in<AsyncReply>(
      arena, kAsyncReplyPayloadTag, bits,
      AsyncReply{intention, has_cert,
                 has_cert ? *min_cert : Certificate{}});
}

const AsyncReply* async_reply_in(const sim::Payload& p) noexcept {
  return p.boxed_as<AsyncReply>(kAsyncReplyPayloadTag);
}

}  // namespace

AsyncSchedule::LocalPhase AsyncSchedule::phase_of(
    std::uint64_t a) const noexcept {
  const std::uint64_t block = q + slack;
  if (a < q) return LocalPhase::kCommitment;
  if (a < block) return LocalPhase::kGuard;
  if (a < block + q) return LocalPhase::kVoting;
  if (a < 2 * block) return LocalPhase::kGuard;
  if (a < 3 * block) return LocalPhase::kFindMin;  // Length q + slack.
  if (a < 3 * block + q) return LocalPhase::kCoherence;
  return LocalPhase::kFinished;
}

std::uint32_t AsyncSchedule::index_of(std::uint64_t a) const noexcept {
  return static_cast<std::uint32_t>(a % (q + slack) % q);
}

sim::AgentPhase AsyncSchedule::observed_phase(std::uint64_t a) const noexcept {
  const std::uint64_t block = q + slack;
  if (a < q) return sim::AgentPhase::kCommit;
  // The guard after commitment leads into voting; the guard after voting
  // leads into find-min (whose own jitter absorber is the extended phase).
  if (a < block + q) return sim::AgentPhase::kVote;
  if (a < 3 * block) return sim::AgentPhase::kSpread;
  if (a < 3 * block + q) return sim::AgentPhase::kConfirm;
  return sim::AgentPhase::kDone;
}

double AsyncSchedule::progress_of(std::uint64_t a) const noexcept {
  // Stage boundaries mirror observed_phase: commit [0, q), vote
  // [q, block+q) (guard + q pushes), spread [block+q, 3·block) (guard + the
  // extended find-min), confirm [3·block, 3·block+q).
  const std::uint64_t block = q + slack;
  const double fq = static_cast<double>(q);
  if (a < q) return static_cast<double>(a) / fq;
  if (a < block + q) {
    return 1.0 + static_cast<double>(a - q) / static_cast<double>(block);
  }
  if (a < 3 * block) {
    return 2.0 + static_cast<double>(a - (block + q)) /
                     static_cast<double>(2 * block - q);
  }
  if (a < 3 * block + q) {
    return 3.0 + static_cast<double>(a - 3 * block) / fq;
  }
  return 4.0;
}

AsyncProtocolAgent::AsyncProtocolAgent(const ProtocolParams& params,
                                       AsyncSchedule schedule, Color color)
    : params_(params), schedule_(schedule), color_(color) {}

void AsyncProtocolAgent::on_start(const sim::Context& ctx) {
  intention_.resize(params_.q);
  for (VoteEntry& e : intention_) {
    e.value = ctx.rng->below(params_.m);
    e.target = ctx.random_peer();
  }
}

sim::Action AsyncProtocolAgent::on_round(const sim::Context& ctx) {
  if (done()) return sim::Action::idle();
  const std::uint64_t a = activations_++;
  const auto phase = schedule_.phase_of(a);
  switch (phase) {
    case AsyncSchedule::LocalPhase::kCommitment:
      return sim::Action::pull(ctx.random_peer());
    case AsyncSchedule::LocalPhase::kVoting: {
      const std::uint32_t i = schedule_.index_of(a);
      const VoteEntry& vote = intention_.at(i);
      return sim::Action::push(
          vote.target, make_async_vote_payload(vote.value, i, params_));
    }
    case AsyncSchedule::LocalPhase::kFindMin:
      if (!own_cert_built_) {
        own_cert_ = make_certificate(params_, ctx.self, color_,
                                     received_votes_);
        own_cert_built_ = true;
        if (!has_min_cert_ || own_cert_.less_than(min_cert_)) {
          min_cert_ = own_cert_;
        }
        has_min_cert_ = true;
      }
      return sim::Action::pull(ctx.random_peer());
    case AsyncSchedule::LocalPhase::kCoherence:
      in_coherence_ = true;
      // The pushed certificate is copied out by every receiver's
      // consider_certificate within the round — arena-transient.
      return sim::Action::push(
          ctx.random_peer(),
          make_certificate_payload_in(ctx.arena, min_cert_, params_));
    case AsyncSchedule::LocalPhase::kFinished:
      finalize();
      return sim::Action::idle();
    case AsyncSchedule::LocalPhase::kGuard:
      return sim::Action::idle();
  }
  return sim::Action::idle();
}

sim::Payload AsyncProtocolAgent::serve_pull(const sim::Context& ctx,
                                            sim::AgentId) {
  if (failed_) return {};  // Invalid state: quiescent.
  // Decided agents keep serving: in the sequential model fast agents finish
  // while slow auditors are still working, and refusing them would make
  // honest agents look faulty.
  return make_async_reply_payload(
      ctx.arena, intention_, has_min_cert_ ? &min_cert_ : nullptr, params_);
}

void AsyncProtocolAgent::on_pull_reply(const sim::Context&,
                                       sim::AgentId target,
                                       const sim::Payload& reply) {
  if (done()) return;
  const AsyncReply* payload = async_reply_in(reply);
  const auto phase = schedule_.phase_of(activations_ - 1);
  if (phase == AsyncSchedule::LocalPhase::kCommitment) {
    if (collected_.contains(target)) return;  // First declaration wins.
    CommitmentRecord record;
    record.marked_faulty = true;
    if (payload != nullptr && payload->intention.size() == params_.q) {
      bool well_formed = true;
      for (const VoteEntry& e : payload->intention) {
        if (e.value >= params_.m || e.target >= params_.n) {
          well_formed = false;
          break;
        }
      }
      if (well_formed) {
        record.marked_faulty = false;
        record.intention = payload->intention;
      }
    }
    collected_.emplace(target, std::move(record));
  } else if (phase == AsyncSchedule::LocalPhase::kFindMin) {
    if (payload != nullptr && payload->has_cert &&
        payload->cert.less_than(min_cert_)) {
      min_cert_ = payload->cert;
    }
  }
}

void AsyncProtocolAgent::on_push(const sim::Context&, sim::AgentId sender,
                                 const sim::Payload& payload) {
  if (done() || payload.empty()) return;
  if (payload.tag() == kAsyncVotePayloadTag) {
    // Votes landing after the certificate is sealed are lost — the
    // misalignment the guard bands exist to make unlikely.
    if (!own_cert_built_) {
      received_votes_.push_back(ReceivedVote{
          sender, static_cast<std::uint32_t>(payload.word(1)),
          payload.word(0)});
    }
    return;
  }
  if (const Certificate* cert = certificate_in(payload)) {
    if (in_coherence_) {
      // Algorithm 1's Coherence rule: any disagreement is fatal.
      if (!(*cert == min_cert_)) {
        failed_ = true;
        failed_in_coherence_ = true;
      }
    } else if (!has_min_cert_ || cert->less_than(min_cert_)) {
      // An early coherence push from a fast peer doubles as Find-Min
      // information.
      min_cert_ = *cert;
      has_min_cert_ = true;
    }
  }
}

void AsyncProtocolAgent::finalize() {
  if (decided_ || failed_) return;
  const VerificationResult result =
      verify_certificate(params_, min_cert_, collected_);
  verification_failure_ = result.failure;
  if (result.accepted()) {
    final_color_ = min_cert_.color;
    decided_ = true;
  } else {
    failed_ = true;
    decided_ = true;
  }
}

AsyncRunResult run_async_protocol(const AsyncRunConfig& cfg) {
  const ProtocolParams params = ProtocolParams::make(cfg.n, cfg.gamma);
  AsyncSchedule schedule;
  schedule.q = params.q;
  schedule.slack = cfg.slack;

  sim::Engine engine(
      {cfg.n, cfg.seed, nullptr, cfg.scheduler.make(), cfg.network.make()});
  rfc::support::Xoshiro256 fault_rng(
      rfc::support::derive_seed(cfg.seed, 0x0fau));
  engine.apply_fault_plan(
      sim::make_fault_plan(cfg.placement, cfg.n, cfg.num_faulty, fault_rng));

  const std::vector<Color> colors =
      cfg.colors.empty() ? leader_election_colors(cfg.n) : cfg.colors;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    engine.set_agent(i, std::make_unique<AsyncProtocolAgent>(
                            params, schedule, colors.at(i)));
  }

  // Each active agent needs ~total_activations wake-ups, which costs
  // ~steps_per_round scheduling events apiece under the chosen policy;
  // coupon-collector slack covers the wake schedule's tail.  An explicit
  // cfg.budget overrides, but the default event cap stays as a termination
  // backstop when only a virtual-time horizon is given.
  const std::uint64_t spr = cfg.scheduler.steps_per_round(cfg.n);
  sim::Budget budget = cfg.budget;
  if (budget.events == 0) {
    budget.events = 8ull * schedule.total_activations() * spr + 64ull * spr;
  }
  engine.run(budget);

  AsyncRunResult result;
  result.steps = engine.steps();
  result.virtual_time = engine.virtual_time();
  result.metrics = engine.metrics();

  bool have = false;
  Color winner = kNoColor;
  bool bottom = false;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    if (engine.is_faulty(i)) continue;
    ++result.active_colors[colors.at(i)];
    const auto& agent =
        static_cast<const AsyncProtocolAgent&>(engine.agent(i));
    if (agent.failed() || !agent.decided()) {
      bottom = true;
      continue;
    }
    if (!have) {
      have = true;
      winner = agent.decision();
    } else if (winner != agent.decision()) {
      bottom = true;
    }
  }
  if (!bottom && have) result.winner = winner;
  return result;
}

}  // namespace rfc::core
