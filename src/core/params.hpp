// Protocol parameters and the global phase schedule.
//
// Protocol P is parametrized by the fault-tolerance constant γ (the paper's
// γ(α)): every communication phase runs for q = ceil(γ ln n) rounds.  The
// vote space is [m] with m = n^3, which makes all k_u distinct w.h.p.
// (birthday bound: collision probability <= |A|^2 / (2 n^3) <= 1/(2n)).
#pragma once

#include <cstdint>

namespace rfc::core {

/// Phases of Protocol P, in execution order.  Voting-Intention is a local
/// computation folded into agent start-up; Verification is a local
/// computation performed right after the last Coherence round.
enum class Phase : std::uint8_t {
  kCommitment,
  kVoting,
  kFindMin,
  kCoherence,
  kFinished,
};

struct ProtocolParams {
  std::uint32_t n = 0;       ///< Network size (known to every agent).
  double gamma = 4.0;        ///< Round multiplier γ(α).
  std::uint32_t q = 0;       ///< Rounds per phase: ceil(γ ln n).
  std::uint64_t m = 0;       ///< Vote space size, n^3.
  bool strict_verification = true;  ///< See verification.hpp (ablation flag).
  /// Optimization (ours, not in the paper): push a 64-bit fingerprint of
  /// CE_min during Coherence instead of the full certificate.  Equality of
  /// fingerprints stands in for equality of certificates (in deployment
  /// this would be a collision-resistant hash), cutting the Coherence
  /// phase's Θ(log^2 n)-bit pushes to Θ(1) words.  Find-Min and
  /// Verification are untouched, so the audit chain is unchanged.
  bool coherence_digest = false;

  /// Builds parameters for a network of `n <= 2^21` agents (so that
  /// m = n^3 fits in 63 bits).  Throws std::invalid_argument otherwise.
  static ProtocolParams make(std::uint32_t n, double gamma = 4.0,
                             bool strict_verification = true);

  /// The phase a given engine round belongs to.
  Phase phase_of_round(std::uint64_t round) const noexcept;

  /// Index of `round` within its phase, in [0, q).
  std::uint32_t round_in_phase(std::uint64_t round) const noexcept;

  std::uint64_t commitment_begin() const noexcept { return 0; }
  std::uint64_t voting_begin() const noexcept { return q; }
  std::uint64_t find_min_begin() const noexcept { return 2ull * q; }
  std::uint64_t coherence_begin() const noexcept { return 3ull * q; }
  /// Rounds of active communication; one extra engine round is consumed by
  /// the local Verification step.
  std::uint64_t communication_rounds() const noexcept { return 4ull * q; }
  std::uint64_t total_rounds() const noexcept { return 4ull * q + 1; }

  // --- wire-encoding widths (bits), shared by all payloads -------------
  std::uint32_t label_bits() const noexcept;  ///< A label in [n].
  std::uint32_t value_bits() const noexcept;  ///< A vote value in [m].
  std::uint32_t round_bits() const noexcept;  ///< A voting-round index in [q].
  std::uint32_t color_bits() const noexcept;  ///< A color (|Σ| <= n).
};

}  // namespace rfc::core
