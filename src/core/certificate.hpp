// The certificate CE_u = (k_u, W_u, c_u, u) of Protocol P.
//
// After the Voting phase every agent u packages the votes it received (W_u),
// their sum modulo m (k_u), its supported color and its label into a
// certificate.  Find-Min circulates the minimal certificate; Coherence
// cross-checks that everyone holds the same one; Verification audits it.
#pragma once

#include <cstdint>

#include "core/params.hpp"
#include "core/types.hpp"

namespace rfc::core {

struct Certificate {
  std::uint64_t k = 0;       ///< Σ_{h ∈ W} h  mod m.
  ReceivedVotes votes;       ///< W: the votes backing k.
  Color color = kNoColor;    ///< The owner's supported color c.
  sim::AgentId owner = sim::kNoAgent;  ///< The owner's label.

  friend bool operator==(const Certificate&, const Certificate&) = default;

  /// Strict-weak ordering used by Find-Min: primarily by k.  The paper's
  /// analysis makes k values distinct w.h.p. (m = n^3); the owner label is a
  /// deterministic tie-break so the simulated protocol is well defined even
  /// on the 1/n^Θ(1) collision event.
  bool less_than(const Certificate& other) const noexcept {
    if (k != other.k) return k < other.k;
    return owner < other.owner;
  }

  /// Wire size under the paper's encoding model: k costs log m bits, each
  /// vote costs (label, round index, value), plus color and owner label.
  /// With Θ(log n) votes this is Θ(log^2 n) bits — the paper's message bound.
  std::uint64_t bit_size(const ProtocolParams& params) const noexcept;

  /// Recomputes Σ votes mod m; a valid certificate satisfies k == vote_sum.
  std::uint64_t vote_sum(const ProtocolParams& params) const noexcept;

  /// 64-bit structural fingerprint over (k, W, color, owner).  Two equal
  /// certificates always have equal digests; distinct certificates collide
  /// with probability ~2^-64 (the simulator's stand-in for a
  /// collision-resistant hash in the coherence-digest optimization).
  std::uint64_t digest() const noexcept;
};

/// The honest certificate for agent `owner`: k computed from `votes`.
Certificate make_certificate(const ProtocolParams& params, sim::AgentId owner,
                             Color color, ReceivedVotes votes);

}  // namespace rfc::core
