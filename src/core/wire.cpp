#include "core/wire.hpp"

#include "support/math_util.hpp"

namespace rfc::core {

void BitWriter::write(std::uint64_t value, std::uint32_t bits) {
  for (std::uint32_t i = bits; i-- > 0;) {
    const std::uint64_t bit = (value >> i) & 1u;
    const std::size_t byte_index = static_cast<std::size_t>(bit_count_ / 8);
    if (byte_index == bytes_.size()) bytes_.push_back(0);
    if (bit) {
      bytes_[byte_index] |=
          static_cast<std::uint8_t>(1u << (7 - bit_count_ % 8));
    }
    ++bit_count_;
  }
}

std::optional<std::uint64_t> BitReader::read(std::uint32_t bits) {
  if (cursor_ + bits > bit_count_ || bits > 64) return std::nullopt;
  std::uint64_t value = 0;
  for (std::uint32_t i = 0; i < bits; ++i) {
    const std::size_t byte_index = static_cast<std::size_t>(cursor_ / 8);
    const std::uint8_t byte = (*bytes_)[byte_index];
    const std::uint64_t bit = (byte >> (7 - cursor_ % 8)) & 1u;
    value = (value << 1) | bit;
    ++cursor_;
  }
  return value;
}

void encode_intention(BitWriter& w, const ProtocolParams& params,
                      const VoteIntention& intention) {
  for (const VoteEntry& e : intention) {
    w.write(e.value, params.value_bits());
    w.write(e.target, params.label_bits());
  }
}

std::optional<VoteIntention> decode_intention(BitReader& r,
                                              const ProtocolParams& params) {
  VoteIntention intention(params.q);
  for (VoteEntry& e : intention) {
    const auto value = r.read(params.value_bits());
    const auto target = r.read(params.label_bits());
    if (!value || !target) return std::nullopt;
    e.value = *value;
    e.target = static_cast<sim::AgentId>(*target);
  }
  return intention;
}

void encode_vote(BitWriter& w, const ProtocolParams& params,
                 std::uint64_t value) {
  w.write(value, params.value_bits());
}

std::optional<std::uint64_t> decode_vote(BitReader& r,
                                         const ProtocolParams& params) {
  return r.read(params.value_bits());
}

std::uint32_t certificate_count_bits(const ProtocolParams& params) noexcept {
  return rfc::support::bit_width_for_domain(
      static_cast<std::uint64_t>(params.n) * params.q + 1);
}

void encode_certificate(BitWriter& w, const ProtocolParams& params,
                        const Certificate& certificate) {
  w.write(certificate.k, params.value_bits());
  w.write(certificate.votes.size(), certificate_count_bits(params));
  for (const ReceivedVote& v : certificate.votes) {
    w.write(v.voter, params.label_bits());
    w.write(v.round_index, params.round_bits());
    w.write(v.value, params.value_bits());
  }
  w.write(static_cast<std::uint64_t>(certificate.color), params.color_bits());
  w.write(certificate.owner, params.label_bits());
}

std::optional<Certificate> decode_certificate(BitReader& r,
                                              const ProtocolParams& params) {
  Certificate c;
  const auto k = r.read(params.value_bits());
  const auto count = r.read(certificate_count_bits(params));
  if (!k || !count) return std::nullopt;
  c.k = *k;
  c.votes.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto voter = r.read(params.label_bits());
    const auto round = r.read(params.round_bits());
    const auto value = r.read(params.value_bits());
    if (!voter || !round || !value) return std::nullopt;
    c.votes.push_back({static_cast<sim::AgentId>(*voter),
                       static_cast<std::uint32_t>(*round), *value});
  }
  const auto color = r.read(params.color_bits());
  const auto owner = r.read(params.label_bits());
  if (!color || !owner) return std::nullopt;
  c.color = static_cast<Color>(*color);
  c.owner = static_cast<sim::AgentId>(*owner);
  return c;
}

std::uint64_t encoded_certificate_bits(const ProtocolParams& params,
                                       const Certificate& c) noexcept {
  return c.bit_size(params) + certificate_count_bits(params);
}

}  // namespace rfc::core
