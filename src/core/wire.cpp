#include "core/wire.hpp"

#include "support/math_util.hpp"

namespace rfc::core {

const char* to_string(WireError error) noexcept {
  switch (error) {
    case WireError::kNone: return "ok";
    case WireError::kTruncated: return "truncated";
    case WireError::kCountOverflow: return "count-overflow";
    case WireError::kRangeViolation: return "range-violation";
    case WireError::kBadFrame: return "bad-frame";
    case WireError::kUnsupportedTag: return "unsupported-tag";
  }
  return "unknown";
}

void BitWriter::write(std::uint64_t value, std::uint32_t bits) {
  for (std::uint32_t i = bits; i-- > 0;) {
    const std::uint64_t bit = (value >> i) & 1u;
    const std::size_t byte_index = static_cast<std::size_t>(bit_count_ / 8);
    if (byte_index == bytes_.size()) bytes_.push_back(0);
    if (bit) {
      bytes_[byte_index] |=
          static_cast<std::uint8_t>(1u << (7 - bit_count_ % 8));
    }
    ++bit_count_;
  }
}

std::optional<std::uint64_t> BitReader::read(std::uint32_t bits) {
  if (cursor_ + bits > bit_count_ || bits > 64) return std::nullopt;
  std::uint64_t value = 0;
  for (std::uint32_t i = 0; i < bits; ++i) {
    const std::size_t byte_index = static_cast<std::size_t>(cursor_ / 8);
    const std::uint8_t byte = (*bytes_)[byte_index];
    const std::uint64_t bit = (byte >> (7 - cursor_ % 8)) & 1u;
    value = (value << 1) | bit;
    ++cursor_;
  }
  return value;
}

void encode_intention(BitWriter& w, const ProtocolParams& params,
                      const VoteIntention& intention) {
  for (const VoteEntry& e : intention) {
    w.write(e.value, params.value_bits());
    w.write(e.target, params.label_bits());
  }
}

WireResult<VoteIntention> decode_intention_checked(
    BitReader& r, const ProtocolParams& params) {
  VoteIntention intention(params.q);
  for (VoteEntry& e : intention) {
    const auto value = r.read(params.value_bits());
    const auto target = r.read(params.label_bits());
    if (!value || !target) {
      return WireResult<VoteIntention>::failure(WireError::kTruncated);
    }
    if (*target >= params.n) {
      return WireResult<VoteIntention>::failure(WireError::kRangeViolation);
    }
    e.value = *value;
    e.target = static_cast<sim::AgentId>(*target);
  }
  return WireResult<VoteIntention>::success(std::move(intention));
}

std::optional<VoteIntention> decode_intention(BitReader& r,
                                              const ProtocolParams& params) {
  // The legacy lenient decoder, kept for in-memory call sites: any
  // structured failure collapses to nullopt.  Note this path historically
  // accepted out-of-range vote targets (they cost their target a vote and
  // nothing else); the checked variant rejects them because transport input
  // is hostile by assumption.
  VoteIntention intention(params.q);
  for (VoteEntry& e : intention) {
    const auto value = r.read(params.value_bits());
    const auto target = r.read(params.label_bits());
    if (!value || !target) return std::nullopt;
    e.value = *value;
    e.target = static_cast<sim::AgentId>(*target);
  }
  return intention;
}

void encode_vote(BitWriter& w, const ProtocolParams& params,
                 std::uint64_t value) {
  w.write(value, params.value_bits());
}

std::optional<std::uint64_t> decode_vote(BitReader& r,
                                         const ProtocolParams& params) {
  return r.read(params.value_bits());
}

std::uint32_t certificate_count_bits(const ProtocolParams& params) noexcept {
  return rfc::support::bit_width_for_domain(
      static_cast<std::uint64_t>(params.n) * params.q + 1);
}

void encode_certificate(BitWriter& w, const ProtocolParams& params,
                        const Certificate& certificate) {
  w.write(certificate.k, params.value_bits());
  w.write(certificate.votes.size(), certificate_count_bits(params));
  for (const ReceivedVote& v : certificate.votes) {
    w.write(v.voter, params.label_bits());
    w.write(v.round_index, params.round_bits());
    w.write(v.value, params.value_bits());
  }
  w.write(static_cast<std::uint64_t>(certificate.color), params.color_bits());
  w.write(certificate.owner, params.label_bits());
}

WireResult<Certificate> decode_certificate_checked(
    BitReader& r, const ProtocolParams& params) {
  using R = WireResult<Certificate>;
  Certificate c;
  const auto k = r.read(params.value_bits());
  const auto count = r.read(certificate_count_bits(params));
  if (!k || !count) return R::failure(WireError::kTruncated);
  // The count prefix's domain bound: at most every vote in the system
  // (n*q) can land on one agent.  Checking it *before* the reserve is what
  // turns a hostile count into a clean rejection instead of a gigabyte
  // allocation — and an overlong count always either violates this bound or
  // runs the stream dry below, so overlong buffers cannot smuggle votes in.
  if (*count > static_cast<std::uint64_t>(params.n) * params.q) {
    return R::failure(WireError::kCountOverflow);
  }
  c.k = *k;
  c.votes.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto voter = r.read(params.label_bits());
    const auto round = r.read(params.round_bits());
    const auto value = r.read(params.value_bits());
    if (!voter || !round || !value) return R::failure(WireError::kTruncated);
    if (*voter >= params.n) return R::failure(WireError::kRangeViolation);
    if (*round >= params.q) return R::failure(WireError::kRangeViolation);
    c.votes.push_back({static_cast<sim::AgentId>(*voter),
                       static_cast<std::uint32_t>(*round), *value});
  }
  const auto color = r.read(params.color_bits());
  const auto owner = r.read(params.label_bits());
  if (!color || !owner) return R::failure(WireError::kTruncated);
  if (*owner >= params.n) return R::failure(WireError::kRangeViolation);
  c.color = static_cast<Color>(*color);
  c.owner = static_cast<sim::AgentId>(*owner);
  return R::success(std::move(c));
}

std::optional<Certificate> decode_certificate(BitReader& r,
                                              const ProtocolParams& params) {
  auto result = decode_certificate_checked(r, params);
  if (!result.ok()) return std::nullopt;
  return std::move(result.value);
}

std::uint64_t encoded_certificate_bits(const ProtocolParams& params,
                                       const Certificate& c) noexcept {
  return c.bit_size(params) + certificate_count_bits(params);
}

}  // namespace rfc::core
