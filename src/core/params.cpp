#include "core/params.hpp"

#include <stdexcept>

#include "support/math_util.hpp"

namespace rfc::core {

ProtocolParams ProtocolParams::make(std::uint32_t n, double gamma,
                                    bool strict_verification) {
  if (n == 0) throw std::invalid_argument("ProtocolParams: n must be > 0");
  if (n > (1u << 21)) {
    throw std::invalid_argument(
        "ProtocolParams: n must be <= 2^21 so m = n^3 fits in 63 bits");
  }
  if (gamma <= 0.0) {
    throw std::invalid_argument("ProtocolParams: gamma must be positive");
  }
  ProtocolParams p;
  p.n = n;
  p.gamma = gamma;
  p.q = rfc::support::round_count(gamma, n);
  p.m = rfc::support::cube(static_cast<std::uint64_t>(n));
  p.strict_verification = strict_verification;
  return p;
}

Phase ProtocolParams::phase_of_round(std::uint64_t round) const noexcept {
  if (round < voting_begin()) return Phase::kCommitment;
  if (round < find_min_begin()) return Phase::kVoting;
  if (round < coherence_begin()) return Phase::kFindMin;
  if (round < communication_rounds()) return Phase::kCoherence;
  return Phase::kFinished;
}

std::uint32_t ProtocolParams::round_in_phase(
    std::uint64_t round) const noexcept {
  return static_cast<std::uint32_t>(round % q);
}

std::uint32_t ProtocolParams::label_bits() const noexcept {
  return rfc::support::bit_width_for_domain(n);
}

std::uint32_t ProtocolParams::value_bits() const noexcept {
  return rfc::support::bit_width_for_domain(m);
}

std::uint32_t ProtocolParams::round_bits() const noexcept {
  return rfc::support::bit_width_for_domain(q);
}

std::uint32_t ProtocolParams::color_bits() const noexcept {
  // Σ has at most n distinct colors in every scenario we model (leader
  // election uses Σ = [n], the largest case).
  return rfc::support::bit_width_for_domain(n);
}

}  // namespace rfc::core
