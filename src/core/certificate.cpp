#include "core/certificate.hpp"

#include "support/rng.hpp"

namespace rfc::core {
namespace {

/// One SplitMix64 finalization round per absorbed word: fast and far below
/// any collision rate observable in simulation.
std::uint64_t absorb(std::uint64_t state, std::uint64_t word) noexcept {
  rfc::support::SplitMix64 mix(state ^ (word * 0x9e3779b97f4a7c15ULL));
  return mix.next();
}

}  // namespace

std::uint64_t Certificate::bit_size(
    const ProtocolParams& params) const noexcept {
  const std::uint64_t per_vote =
      params.label_bits() + params.round_bits() + params.value_bits();
  return params.value_bits()                       // k
         + votes.size() * per_vote                 // W
         + params.color_bits()                     // c
         + params.label_bits();                    // owner label
}

std::uint64_t Certificate::vote_sum(
    const ProtocolParams& params) const noexcept {
  std::uint64_t sum = 0;
  for (const ReceivedVote& v : votes) {
    sum = (sum + v.value % params.m) % params.m;
  }
  return sum;
}

std::uint64_t Certificate::digest() const noexcept {
  std::uint64_t h = absorb(0x243f6a8885a308d3ULL, k);
  h = absorb(h, votes.size());
  for (const ReceivedVote& v : votes) {
    h = absorb(h, (static_cast<std::uint64_t>(v.voter) << 32) |
                      v.round_index);
    h = absorb(h, v.value);
  }
  h = absorb(h, static_cast<std::uint64_t>(color));
  h = absorb(h, owner);
  return h;
}

Certificate make_certificate(const ProtocolParams& params, sim::AgentId owner,
                             Color color, ReceivedVotes votes) {
  Certificate ce;
  ce.votes = std::move(votes);
  ce.color = color;
  ce.owner = owner;
  ce.k = ce.vote_sum(params);
  return ce;
}

}  // namespace rfc::core
