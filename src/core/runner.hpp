// End-to-end execution of Protocol P on the simulated GOSSIP network:
// builds the engine, installs (honest or deviating) agents, applies the
// fault plan, runs to termination, and extracts the outcome plus the
// good-execution diagnostics of Definitions 2 and 5.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/params.hpp"
#include "core/protocol_agent.hpp"
#include "core/types.hpp"
#include "sim/budget.hpp"
#include "sim/engine.hpp"
#include "sim/fault_model.hpp"
#include "sim/network_spec.hpp"
#include "sim/scheduler_spec.hpp"

namespace rfc::core {

/// Factory used to install deviating agents; return null to get an honest
/// agent for that label.
using AgentFactory = std::function<std::unique_ptr<ProtocolAgent>(
    sim::AgentId id, const ProtocolParams& params, Color color)>;

struct RunConfig {
  std::uint32_t n = 0;
  double gamma = 4.0;
  std::uint64_t seed = 1;
  /// Initial color of every label; entries for faulty labels are ignored.
  /// If empty, fair leader election is simulated (c_u = u).
  std::vector<Color> colors;
  std::uint32_t num_faulty = 0;
  sim::FaultPlacement placement = sim::FaultPlacement::kNone;
  bool strict_verification = true;
  /// Coherence-digest optimization (see ProtocolParams::coherence_digest).
  bool coherence_digest = false;
  /// Interconnect; null = the complete graph (the paper's model).  On other
  /// topologies all protocol contacts (audits, votes, broadcast) go to
  /// random *neighbors*; experiment E11 explores open problem #1.
  sim::TopologyPtr topology;
  /// Activation policy; the default is the paper's synchronous model.
  /// Protocol P's phase schedule reads the *global* clock, so under
  /// activation-based policies (sequential, adversarial, poisson) agents
  /// see only ~1/n of the schedule's rounds each and the completeness
  /// argument is expected to break — running it anyway is how E12c/E12d
  /// map where it breaks.  The step budget scales by
  /// scheduler.steps_per_round(n) so every agent still observes the whole
  /// schedule.  `synchronous:shards=S,threads=T` runs the phased round
  /// sharded on a thread pool (sim/sharding.hpp), bit-identical to the
  /// serial engine; deviation factories that share a Coalition blackboard
  /// across labels are not shard-safe, so keep shards=1 with a coalition.
  sim::SchedulerSpec scheduler;
  /// Message-layer adversary & churn (`network:drop=p,corrupt=p,...`, see
  /// sim/network_spec.hpp); the default is the reliable network.  Composes
  /// with every scheduler — the fault stage sits in the engine's delivery
  /// phases, below the activation policy.
  sim::NetworkSpec network;
  /// Labels that deviate (the coalition C).  Their agents come from
  /// `factory`; outcome and fairness are judged over honest agents.
  std::vector<sim::AgentId> coalition;
  AgentFactory factory;
  /// Safety cap on engine rounds (the protocol self-terminates at 4q+1).
  std::uint64_t max_rounds_slack = 16;
  /// Optional run budget override (events and/or a virtual-time horizon).
  /// Unset fields fall back to the schedule-derived default event cap.
  sim::Budget budget;
  /// When true, the runner watches every Find-Min round and records when
  /// global agreement on CE_min is actually reached (an O(n)-per-round
  /// measurement used by E1; off by default).
  bool measure_convergence = false;
};

/// Empirical counterparts of the good-execution events (Def. 2 / Def. 5),
/// measured over honest active agents.
struct GoodExecutionEvents {
  std::uint32_t min_votes = 0;  ///< Fewest votes any honest agent received.
  std::uint32_t max_votes = 0;  ///< Most votes any honest agent received.
  bool k_values_distinct = false;       ///< Def. 2(2) over honest agents.
  bool find_min_agreement = false;      ///< Def. 2(3) / Def. 5(2).
  bool every_agent_audited = false;     ///< Def. 5(1): every active agent was
                                        ///< commitment-pulled by an honest one.
  bool every_agent_cleanly_voted = false;  ///< Def. 5(3): every active agent
                                        ///< receives a vote from an honest
                                        ///< agent not pulled by the coalition.
};

struct RunResult {
  /// The winning color, or kNoColor for the ⊥ outcome (some honest agent
  /// failed, or honest agents disagree).
  Color winner = kNoColor;
  bool failed() const noexcept { return winner == kNoColor; }
  /// Owner label of the accepted minimal certificate (kNoAgent on ⊥).
  sim::AgentId winner_agent = sim::kNoAgent;
  std::uint64_t rounds = 0;
  std::uint32_t num_active = 0;
  std::uint32_t honest_failures = 0;  ///< Honest agents that raised fail.
  /// Largest per-agent state footprint observed (bits) — the paper's
  /// polylog local-memory claim, measured.
  std::uint64_t max_local_memory_bits = 0;
  /// With measure_convergence: the Find-Min round index (0-based within
  /// the phase) after which every honest agent already held the same
  /// certificate; the schedule grants q such rounds.  ~0 if never reached
  /// or not measured.
  std::uint64_t find_min_agreement_round = kNotMeasured;
  static constexpr std::uint64_t kNotMeasured = ~0ull;
  sim::Metrics metrics;
  GoodExecutionEvents events;
  /// Initial color histogram over *active* agents — the denominator of the
  /// fairness property (Pr[c wins] = N(A,c)/|A|).
  std::map<Color, std::uint32_t> active_colors;
};

/// Builds the engine of a Protocol P run — params derived, fault plan
/// applied, honest/deviating agents installed — without stepping it.  Split
/// out so harnesses that need the engine afterwards (e.g. the transport
/// cross-check digesting per-agent end state, net/harness.hpp) drive the
/// exact engine the entry point runs.
std::unique_ptr<sim::Engine> build_protocol_engine(const RunConfig& cfg);

/// Runs the protocol loop on an engine built by build_protocol_engine and
/// extracts the outcome (params, colors, and coalition membership are
/// re-derived from cfg, deterministically).
RunResult run_protocol_on(sim::Engine& engine, const RunConfig& cfg);

/// Equivalent to build_protocol_engine + run_protocol_on.
RunResult run_protocol(const RunConfig& cfg);

/// Convenience: the color vector for fair leader election (c_u = u).
std::vector<Color> leader_election_colors(std::uint32_t n);

/// Convenience: colors split by fractions, e.g. {0.5, 0.3, 0.2} assigns the
/// first half of labels color 0, next 30% color 1, etc.  Fractions are
/// normalized; rounding gives the last color the remainder.
std::vector<Color> split_colors(std::uint32_t n,
                                const std::vector<double>& fractions);

}  // namespace rfc::core
