#include "core/payloads.hpp"

#include <utility>

#include "sim/network.hpp"

namespace rfc::core {
namespace {

// --- Network-adversary hooks (sim/network.hpp) ----------------------------
// Boxed payloads are opaque to the engine's generic bit-flip, so the core
// registers per-tag ops: `corrupt` flips one semantic bit (the tampering the
// verifier must catch), `clone` re-boxes a heap-shared copy so a delayed
// push survives the round-arena reset.

sim::Payload corrupt_certificate(const sim::Payload& p, std::uint64_t salt) {
  const Certificate* cert = certificate_in(p);
  if (cert == nullptr) return {};
  Certificate tampered = *cert;
  // Any flip in k breaks k == Σ votes mod m, so verification reports
  // kBadKeySum no matter which bit the salt picks.
  tampered.k ^= std::uint64_t{1} << (salt % 64u);
  return sim::Payload::make_boxed<Certificate>(kCertificatePayloadTag,
                                               p.bit_size(),
                                               std::move(tampered));
}

sim::Payload clone_certificate(const sim::Payload& p) {
  const Certificate* cert = certificate_in(p);
  if (cert == nullptr) return {};
  return sim::Payload::make_boxed<Certificate>(kCertificatePayloadTag,
                                               p.bit_size(),
                                               Certificate{*cert});
}

sim::Payload corrupt_intention(const sim::Payload& p, std::uint64_t salt) {
  const VoteIntention* intent = intention_in(p);
  if (intent == nullptr || intent->empty()) return {};
  VoteIntention tampered = *intent;
  // Flip one bit of one vote value: the commitment H no longer matches the
  // votes actually pushed, which is exactly Verification's check (iii).
  tampered[(salt >> 6u) % tampered.size()].value ^=
      std::uint64_t{1} << (salt % 64u);
  return sim::Payload::make_boxed<VoteIntention>(kIntentionPayloadTag,
                                                 p.bit_size(),
                                                 std::move(tampered));
}

sim::Payload clone_intention(const sim::Payload& p) {
  const VoteIntention* intent = intention_in(p);
  if (intent == nullptr) return {};
  return sim::Payload::make_boxed<VoteIntention>(kIntentionPayloadTag,
                                                 p.bit_size(),
                                                 VoteIntention{*intent});
}

[[maybe_unused]] const bool kOpsRegistered = [] {
  sim::register_payload_ops(kCertificatePayloadTag,
                            {&corrupt_certificate, &clone_certificate});
  sim::register_payload_ops(kIntentionPayloadTag,
                            {&corrupt_intention, &clone_intention});
  return true;
}();

}  // namespace

sim::Payload make_intention_payload(VoteIntention intention,
                                    const ProtocolParams& params) {
  const std::uint64_t bits =
      intention.size() * (static_cast<std::uint64_t>(params.value_bits()) +
                          params.label_bits());
  return sim::Payload::make_boxed<VoteIntention>(kIntentionPayloadTag, bits,
                                                 std::move(intention));
}

sim::Payload make_intention_payload_in(rfc::support::Arena* arena,
                                       VoteIntention intention,
                                       const ProtocolParams& params) {
  const std::uint64_t bits =
      intention.size() * (static_cast<std::uint64_t>(params.value_bits()) +
                          params.label_bits());
  return sim::Payload::make_boxed_in<VoteIntention>(
      arena, kIntentionPayloadTag, bits, std::move(intention));
}

sim::Payload make_vote_payload(std::uint64_t value,
                               const ProtocolParams& params) {
  return sim::Payload::inline_words(kVotePayloadTag, params.value_bits(),
                                    value);
}

sim::Payload make_certificate_payload(Certificate certificate,
                                      const ProtocolParams& params) {
  const std::uint64_t bits = certificate.bit_size(params);
  return sim::Payload::make_boxed<Certificate>(kCertificatePayloadTag, bits,
                                               std::move(certificate));
}

sim::Payload make_certificate_payload_in(rfc::support::Arena* arena,
                                         Certificate certificate,
                                         const ProtocolParams& params) {
  const std::uint64_t bits = certificate.bit_size(params);
  return sim::Payload::make_boxed_in<Certificate>(
      arena, kCertificatePayloadTag, bits, std::move(certificate));
}

sim::Payload make_digest_payload(std::uint64_t digest) noexcept {
  return sim::Payload::inline_words(kDigestPayloadTag, 64, digest);
}

}  // namespace rfc::core
