#include "core/payloads.hpp"

#include <utility>

namespace rfc::core {

sim::Payload make_intention_payload(VoteIntention intention,
                                    const ProtocolParams& params) {
  const std::uint64_t bits =
      intention.size() * (static_cast<std::uint64_t>(params.value_bits()) +
                          params.label_bits());
  return sim::Payload::make_boxed<VoteIntention>(kIntentionPayloadTag, bits,
                                                 std::move(intention));
}

sim::Payload make_intention_payload_in(rfc::support::Arena* arena,
                                       VoteIntention intention,
                                       const ProtocolParams& params) {
  const std::uint64_t bits =
      intention.size() * (static_cast<std::uint64_t>(params.value_bits()) +
                          params.label_bits());
  return sim::Payload::make_boxed_in<VoteIntention>(
      arena, kIntentionPayloadTag, bits, std::move(intention));
}

sim::Payload make_vote_payload(std::uint64_t value,
                               const ProtocolParams& params) {
  return sim::Payload::inline_words(kVotePayloadTag, params.value_bits(),
                                    value);
}

sim::Payload make_certificate_payload(Certificate certificate,
                                      const ProtocolParams& params) {
  const std::uint64_t bits = certificate.bit_size(params);
  return sim::Payload::make_boxed<Certificate>(kCertificatePayloadTag, bits,
                                               std::move(certificate));
}

sim::Payload make_certificate_payload_in(rfc::support::Arena* arena,
                                         Certificate certificate,
                                         const ProtocolParams& params) {
  const std::uint64_t bits = certificate.bit_size(params);
  return sim::Payload::make_boxed_in<Certificate>(
      arena, kCertificatePayloadTag, bits, std::move(certificate));
}

sim::Payload make_digest_payload(std::uint64_t digest) noexcept {
  return sim::Payload::inline_words(kDigestPayloadTag, 64, digest);
}

}  // namespace rfc::core
