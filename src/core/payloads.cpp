#include "core/payloads.hpp"

namespace rfc::core {

IntentionPayload::IntentionPayload(VoteIntention intention,
                                   const ProtocolParams& params)
    : intention_(std::move(intention)),
      bits_(intention_.size() *
            (static_cast<std::uint64_t>(params.value_bits()) +
             params.label_bits())) {}

VotePayload::VotePayload(std::uint64_t value, const ProtocolParams& params)
    : value_(value), bits_(params.value_bits()) {}

CertificatePayload::CertificatePayload(Certificate certificate,
                                       const ProtocolParams& params)
    : certificate_(std::move(certificate)),
      bits_(certificate_.bit_size(params)) {}

}  // namespace rfc::core
