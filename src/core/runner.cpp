#include "core/runner.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

namespace rfc::core {

std::vector<Color> leader_election_colors(std::uint32_t n) {
  std::vector<Color> colors(n);
  for (std::uint32_t i = 0; i < n; ++i) colors[i] = static_cast<Color>(i);
  return colors;
}

std::vector<Color> split_colors(std::uint32_t n,
                                const std::vector<double>& fractions) {
  std::vector<Color> colors(n, 0);
  if (fractions.empty()) return colors;
  double total = 0.0;
  for (double f : fractions) total += f;
  std::uint32_t next = 0;
  for (std::size_t c = 0; c + 1 < fractions.size(); ++c) {
    const auto count = static_cast<std::uint32_t>(
        fractions[c] / total * static_cast<double>(n) + 0.5);
    for (std::uint32_t i = 0; i < count && next < n; ++i) {
      colors[next++] = static_cast<Color>(c);
    }
  }
  while (next < n) colors[next++] = static_cast<Color>(fractions.size() - 1);
  return colors;
}

namespace {

/// Collects Def. 2 / Def. 5 diagnostics after the run.
GoodExecutionEvents collect_events(const sim::Engine& engine,
                                   const std::vector<bool>& in_coalition) {
  GoodExecutionEvents ev;
  const std::uint32_t n = engine.n();

  ev.min_votes = std::numeric_limits<std::uint32_t>::max();
  ev.max_votes = 0;
  ev.k_values_distinct = true;
  ev.find_min_agreement = true;
  ev.every_agent_audited = true;
  ev.every_agent_cleanly_voted = true;

  std::unordered_set<std::uint64_t> keys;
  const Certificate* reference_min = nullptr;

  // M: agents commitment-pulled by some coalition member (Def. 5(3)).
  std::unordered_set<sim::AgentId> pulled_by_coalition;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (engine.is_faulty(i) || !in_coalition[i]) continue;
    const auto& agent = static_cast<const ProtocolAgent&>(engine.agent(i));
    for (const auto& [peer, record] : agent.collected_intentions()) {
      (void)record;
      pulled_by_coalition.insert(peer);
    }
  }

  // Which agents received a "clean" vote: from an honest voter outside
  // C ∪ M.  Scan honest voters' intentions (they vote as declared).
  std::vector<bool> cleanly_voted(n, false);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (engine.is_faulty(v) || in_coalition[v]) continue;
    if (pulled_by_coalition.contains(v)) continue;
    const auto& voter = static_cast<const ProtocolAgent&>(engine.agent(v));
    for (const VoteEntry& e : voter.intention()) {
      if (e.target < n) cleanly_voted[e.target] = true;
    }
  }

  bool any_honest = false;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (engine.is_faulty(i)) continue;
    const auto& agent = static_cast<const ProtocolAgent&>(engine.agent(i));

    // Def. 5(1): audited by at least one honest agent.
    bool audited = false;
    for (sim::AgentId p : agent.commitment_pullers()) {
      if (!engine.is_faulty(p) && !in_coalition[p]) {
        audited = true;
        break;
      }
    }
    ev.every_agent_audited = ev.every_agent_audited && audited;
    ev.every_agent_cleanly_voted =
        ev.every_agent_cleanly_voted && cleanly_voted[i];

    if (in_coalition[i]) continue;  // Honest-only diagnostics below.
    any_honest = true;

    const auto votes = static_cast<std::uint32_t>(
        agent.received_votes().size());
    ev.min_votes = std::min(ev.min_votes, votes);
    ev.max_votes = std::max(ev.max_votes, votes);

    if (agent.has_own_certificate()) {
      if (!keys.insert(agent.own_certificate().k).second) {
        ev.k_values_distinct = false;
      }
    }
    if (agent.has_min_certificate()) {
      if (reference_min == nullptr) {
        reference_min = &agent.min_certificate();
      } else if (!(*reference_min == agent.min_certificate())) {
        ev.find_min_agreement = false;
      }
    }
  }
  if (!any_honest) ev.min_votes = 0;
  return ev;
}

}  // namespace

std::unique_ptr<sim::Engine> build_protocol_engine(const RunConfig& cfg) {
  ProtocolParams params =
      ProtocolParams::make(cfg.n, cfg.gamma, cfg.strict_verification);
  params.coherence_digest = cfg.coherence_digest;

  // Deviation agents share the Coalition blackboard across labels, which a
  // sharded round would mutate from several threads at once — reject the
  // combination instead of racing (see RunConfig::scheduler).
  if (!cfg.coalition.empty() && cfg.scheduler.param_uint("shards", 1) > 1) {
    throw std::invalid_argument(
        "run_protocol: coalition deviations share a blackboard across "
        "labels and are not shard-safe; use shards=1");
  }

  auto engine = std::make_unique<sim::Engine>(
      sim::EngineConfig{cfg.n, cfg.seed, cfg.topology, cfg.scheduler.make(),
                        cfg.network.make()});
  rfc::support::Xoshiro256 fault_rng(
      rfc::support::derive_seed(cfg.seed, 0x0fau));
  engine->apply_fault_plan(
      sim::make_fault_plan(cfg.placement, cfg.n, cfg.num_faulty, fault_rng));

  std::vector<bool> in_coalition(cfg.n, false);
  for (sim::AgentId id : cfg.coalition) in_coalition.at(id) = true;

  const std::vector<Color> colors =
      cfg.colors.empty() ? leader_election_colors(cfg.n) : cfg.colors;

  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    std::unique_ptr<ProtocolAgent> agent;
    if (in_coalition[i] && cfg.factory) {
      agent = cfg.factory(i, params, colors.at(i));
    }
    if (agent == nullptr) {
      agent = std::make_unique<ProtocolAgent>(params, colors.at(i));
    }
    engine->set_agent(i, std::move(agent));
  }
  return engine;
}

RunResult run_protocol_on(sim::Engine& engine, const RunConfig& cfg) {
  ProtocolParams params =
      ProtocolParams::make(cfg.n, cfg.gamma, cfg.strict_verification);
  params.coherence_digest = cfg.coherence_digest;

  std::vector<bool> in_coalition(cfg.n, false);
  for (sim::AgentId id : cfg.coalition) in_coalition.at(id) = true;

  const std::vector<Color> colors =
      cfg.colors.empty() ? leader_election_colors(cfg.n) : cfg.colors;

  std::uint64_t agreement_round = RunResult::kNotMeasured;
  if (cfg.measure_convergence) {
    engine.set_round_observer([&](const sim::Engine& e) {
      if (agreement_round != RunResult::kNotMeasured) return;
      const std::uint64_t round = e.round() - 1;  // Round just executed.
      if (params.phase_of_round(round) != Phase::kFindMin) return;
      const Certificate* reference = nullptr;
      for (std::uint32_t i = 0; i < e.n(); ++i) {
        if (e.is_faulty(i) || in_coalition[i]) continue;
        const auto& agent = static_cast<const ProtocolAgent&>(e.agent(i));
        if (!agent.has_min_certificate()) return;
        if (reference == nullptr) {
          reference = &agent.min_certificate();
        } else if (!(*reference == agent.min_certificate())) {
          return;
        }
      }
      agreement_round = params.round_in_phase(round);
    });
  }

  // Budget in scheduling events: one event per round under the synchronous
  // model, ~n events per round of per-agent progress under activation-based
  // policies.  cfg.budget overrides; the default event cap survives as a
  // backstop when only a virtual-time horizon is given.
  sim::Budget budget = cfg.budget;
  if (budget.events == 0) {
    budget.events = (params.total_rounds() + cfg.max_rounds_slack) *
                    cfg.scheduler.steps_per_round(cfg.n);
  }
  engine.run(budget);

  RunResult result;
  result.rounds = engine.round();
  result.find_min_agreement_round = agreement_round;
  result.num_active = engine.num_active();
  result.metrics = engine.metrics();
  result.events = collect_events(engine, in_coalition);
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    if (engine.is_faulty(i)) continue;
    ++result.active_colors[colors.at(i)];
    const auto& agent = static_cast<const ProtocolAgent&>(engine.agent(i));
    result.max_local_memory_bits =
        std::max(result.max_local_memory_bits, agent.local_memory_bits());
  }

  // Outcome f(execution): the common color of honest active agents, or ⊥ if
  // any honest agent failed, is undecided, or disagrees.
  bool have_color = false;
  Color winner = kNoColor;
  sim::AgentId winner_agent = sim::kNoAgent;
  bool bottom = false;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    if (engine.is_faulty(i) || in_coalition[i]) continue;
    const auto& agent = static_cast<const ProtocolAgent&>(engine.agent(i));
    if (agent.failed() || !agent.decided()) {
      ++result.honest_failures;
      bottom = true;
      continue;
    }
    if (!have_color) {
      have_color = true;
      winner = agent.decision();
      winner_agent = agent.min_certificate().owner;
    } else if (winner != agent.decision()) {
      bottom = true;
    }
  }
  if (!bottom && have_color) {
    result.winner = winner;
    result.winner_agent = winner_agent;
  }
  return result;
}

RunResult run_protocol(const RunConfig& cfg) {
  const std::unique_ptr<sim::Engine> engine = build_protocol_engine(cfg);
  return run_protocol_on(*engine, cfg);
}

}  // namespace rfc::core
