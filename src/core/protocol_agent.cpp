#include "core/protocol_agent.hpp"

#include <memory>

#include "core/payloads.hpp"

namespace rfc::core {
namespace {

sim::AgentPhase to_agent_phase(Phase p) noexcept {
  switch (p) {
    case Phase::kCommitment: return sim::AgentPhase::kCommit;
    case Phase::kVoting: return sim::AgentPhase::kVote;
    case Phase::kFindMin: return sim::AgentPhase::kSpread;
    case Phase::kCoherence: return sim::AgentPhase::kConfirm;
    case Phase::kFinished: return sim::AgentPhase::kDone;
  }
  return sim::AgentPhase::kUnknown;
}

}  // namespace

ProtocolAgent::ProtocolAgent(const ProtocolParams& params, Color color)
    : params_(params), color_(color) {}

void ProtocolAgent::on_start(const sim::Context& ctx) {
  intention_ = choose_intention(ctx);
}

VoteIntention ProtocolAgent::choose_intention(const sim::Context& ctx) {
  VoteIntention h(params_.q);
  for (VoteEntry& e : h) {
    e.value = ctx.rng->below(params_.m);
    // On the complete graph this is a label u.a.r. in [n], per Algorithm 1;
    // on other topologies a vote can only be pushed to a neighbor.
    e.target = ctx.random_peer();
  }
  return h;
}

sim::Action ProtocolAgent::commitment_action(const sim::Context& ctx) {
  return sim::Action::pull(ctx.random_peer());
}

sim::Payload ProtocolAgent::commitment_reply(const sim::Context&,
                                             sim::AgentId) {
  if (cached_intention_payload_.empty()) {
    cached_intention_payload_ = make_intention_payload(intention_, params_);
  }
  return cached_intention_payload_;
}

VoteEntry ProtocolAgent::vote_for_round(const sim::Context&,
                                        std::uint32_t i) {
  return intention_.at(i);
}

Certificate ProtocolAgent::build_own_certificate(const sim::Context& ctx) {
  return make_certificate(params_, ctx.self, color_, received_votes_);
}

void ProtocolAgent::consider_certificate(const Certificate& certificate) {
  if (certificate.less_than(min_cert_)) {
    min_cert_ = certificate;
    cached_min_cert_payload_ = {};
  }
}

sim::Payload ProtocolAgent::min_cert_payload() {
  if (!has_min_certificate_) return {};
  if (cached_min_cert_payload_.empty()) {
    cached_min_cert_payload_ = make_certificate_payload(min_cert_, params_);
  }
  return cached_min_cert_payload_;
}

sim::Action ProtocolAgent::coherence_action(const sim::Context& ctx) {
  if (params_.coherence_digest) {
    return sim::Action::push(ctx.random_peer(),
                             make_digest_payload(min_cert_.digest()));
  }
  return sim::Action::push(ctx.random_peer(), min_cert_payload());
}

sim::Payload ProtocolAgent::find_min_reply(const sim::Context&,
                                           sim::AgentId) {
  return min_cert_payload();
}

void ProtocolAgent::on_coherence_certificate(const Certificate& certificate) {
  if (!(certificate == min_cert_)) fail_protocol();
}

void ProtocolAgent::on_coherence_digest(std::uint64_t digest) {
  if (digest != min_cert_.digest()) fail_protocol();
}

void ProtocolAgent::finalize(const sim::Context&) {
  const VerificationResult result =
      verify_certificate(params_, min_cert_, collected_);
  verification_failure_ = result.failure;
  if (result.accepted()) {
    decide(min_cert_.color);
  } else {
    fail_protocol();
  }
}

std::uint64_t ProtocolAgent::local_memory_bits() const noexcept {
  const std::uint64_t entry_bits =
      params_.value_bits() + params_.label_bits();
  std::uint64_t bits =
      intention_.size() * entry_bits;  // H_u.
  for (const auto& [peer, record] : collected_) {  // L_u.
    bits += params_.label_bits() + 1;  // Peer label + faulty flag.
    bits += record.intention.size() * entry_bits;
  }
  const std::uint64_t vote_bits =
      params_.label_bits() + params_.round_bits() + params_.value_bits();
  bits += received_votes_.size() * vote_bits;  // W_u.
  if (has_own_certificate_) bits += own_cert_.bit_size(params_);
  if (has_min_certificate_) bits += min_cert_.bit_size(params_);
  return bits;
}

double ProtocolAgent::progress() const noexcept {
  if (done()) return 4.0;
  // The schedule is 4 communication phases of q rounds each, so the round
  // of the last activation over q is exactly stages-completed + fraction.
  const std::uint64_t cap = params_.communication_rounds();
  const std::uint64_t r = observed_round_ < cap ? observed_round_ : cap;
  return static_cast<double>(r) / static_cast<double>(params_.q);
}

sim::Action ProtocolAgent::on_round(const sim::Context& ctx) {
  if (done()) return sim::Action::idle();
  observed_round_ = ctx.round;
  observed_phase_ = to_agent_phase(params_.phase_of_round(ctx.round));
  switch (params_.phase_of_round(ctx.round)) {
    case Phase::kCommitment:
      return commitment_action(ctx);
    case Phase::kVoting: {
      const std::uint32_t i = params_.round_in_phase(ctx.round);
      const VoteEntry vote = vote_for_round(ctx, i);
      return sim::Action::push(
          vote.target, make_vote_payload(vote.value % params_.m, params_));
    }
    case Phase::kFindMin:
      if (ctx.round == params_.find_min_begin()) {
        own_cert_ = build_own_certificate(ctx);
        has_own_certificate_ = true;
        min_cert_ = own_cert_;
        has_min_certificate_ = true;
        cached_min_cert_payload_ = {};
      }
      return sim::Action::pull(ctx.random_peer());
    case Phase::kCoherence:
      return coherence_action(ctx);
    case Phase::kFinished:
      finalize(ctx);
      return sim::Action::idle();
  }
  return sim::Action::idle();
}

sim::Payload ProtocolAgent::serve_pull(const sim::Context& ctx,
                                       sim::AgentId requester) {
  if (done()) return {};  // Failed/terminated agents are quiescent.
  switch (params_.phase_of_round(ctx.round)) {
    case Phase::kCommitment:
      commitment_pullers_.push_back(requester);
      return commitment_reply(ctx, requester);
    case Phase::kFindMin:
      return find_min_reply(ctx, requester);
    default:
      // The protocol defines no pulls in other phases; an honest agent
      // answers unexpected (necessarily deviant) requests with silence.
      return {};
  }
}

void ProtocolAgent::record_commitment_reply(sim::AgentId target,
                                            const sim::Payload& reply) {
  // First declaration wins: if we already hold a record for `target`
  // (pulled it twice), the original stands.
  if (collected_.contains(target)) return;
  CommitmentRecord record;
  record.marked_faulty = true;
  if (const VoteIntention* h = intention_in(reply)) {
    // "Replies in an unexpected way" (footnote 4): wrong length or
    // out-of-domain entries also mark the peer faulty.
    if (h->size() == params_.q) {
      bool well_formed = true;
      for (const VoteEntry& e : *h) {
        if (e.value >= params_.m || e.target >= params_.n) {
          well_formed = false;
          break;
        }
      }
      if (well_formed) {
        record.marked_faulty = false;
        record.intention = *h;
      }
    }
  }
  collected_.emplace(target, std::move(record));
}

void ProtocolAgent::on_pull_reply(const sim::Context& ctx, sim::AgentId target,
                                  const sim::Payload& reply) {
  if (done()) return;
  switch (params_.phase_of_round(ctx.round)) {
    case Phase::kCommitment:
      record_commitment_reply(target, reply);
      break;
    case Phase::kFindMin:
      if (const Certificate* cert = certificate_in(reply)) {
        consider_certificate(*cert);
      }
      break;
    default:
      break;
  }
}

void ProtocolAgent::on_push(const sim::Context& ctx, sim::AgentId sender,
                            const sim::Payload& payload) {
  if (done() || payload.empty()) return;
  switch (params_.phase_of_round(ctx.round)) {
    case Phase::kVoting:
      if (is_vote(payload)) {
        received_votes_.push_back(ReceivedVote{
            sender, params_.round_in_phase(ctx.round),
            vote_value_in(payload)});
      }
      break;
    case Phase::kCoherence:
      if (const Certificate* cert = certificate_in(payload)) {
        on_coherence_certificate(*cert);
      } else if (is_digest(payload)) {
        on_coherence_digest(digest_in(payload));
      }
      break;
    default:
      // Pushes outside Voting/Coherence are not part of the protocol;
      // honest agents ignore them.
      break;
  }
}

}  // namespace rfc::core
