// Bit-exact wire encoding of Protocol P's payloads.
//
// The complexity claims of the paper are stated in *bits*; the simulator
// accounts them via Payload::bit_size().  This module closes the loop: every
// payload can actually be serialized into exactly that many bits and parsed
// back, so the accounting model is honest — no hidden framing, no padding.
//
// Encoding model (Section 3): a vote value costs ceil(log2 m) bits, a label
// ceil(log2 n), a voting-round index ceil(log2 q), a color ceil(log2 n).
// Counts that both sides already know (q entries of an intention) are not
// transmitted; the certificate's variable-length W is prefixed by a vote
// count of ceil(log2 (n q)) bits, which is included in bit_size().
//
// Parse errors.  Decoders come in two flavors: the original optional-based
// ones (nullopt on any failure — what the in-memory simulator ever needed)
// and _checked variants returning a WireResult with a structured WireError.
// The checked variants exist because the transport layer (src/net) feeds
// these decoders bytes from the network: a truncated stream, an overlong
// vote count (a 2^30 reserve bomb), or an out-of-range label must each be
// rejected with a diagnosable reason instead of a crash, an assert, or an
// unbounded allocation.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/certificate.hpp"
#include "core/params.hpp"
#include "core/types.hpp"

namespace rfc::core {

/// Structured reason a wire decode was rejected.
enum class WireError : std::uint8_t {
  kNone = 0,        ///< Decode succeeded.
  kTruncated,       ///< The stream ended before the value was complete.
  kCountOverflow,   ///< A count prefix exceeds its domain bound (n*q for a
                    ///< certificate's vote multiset) — an overlong buffer
                    ///< that would otherwise drive an unbounded reserve.
  kRangeViolation,  ///< A decoded field lies outside its domain (a label
                    ///< >= n, a voting round >= q).
  kBadFrame,        ///< Malformed transport frame (net/wire_frame).
  kUnsupportedTag,  ///< A payload tag the wire codec has no encoding for.
};

/// Stable diagnostic names ("truncated", "count-overflow", ...).
const char* to_string(WireError error) noexcept;

/// Outcome of a checked decode: a value, or a structured error.  `value`
/// is engaged iff `error == WireError::kNone`.
template <typename T>
struct WireResult {
  std::optional<T> value;
  WireError error = WireError::kNone;

  bool ok() const noexcept { return error == WireError::kNone; }
  static WireResult failure(WireError e) noexcept { return {std::nullopt, e}; }
  static WireResult success(T v) { return {std::move(v), WireError::kNone}; }
};

/// Append-only bit stream writer (MSB-first within each value).
class BitWriter {
 public:
  /// Appends the low `bits` bits of `value`.
  void write(std::uint64_t value, std::uint32_t bits);

  std::uint64_t bit_count() const noexcept { return bit_count_; }
  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint64_t bit_count_ = 0;
};

/// Sequential reader over a BitWriter's output.
class BitReader {
 public:
  BitReader(const std::vector<std::uint8_t>& bytes,
            std::uint64_t bit_count) noexcept
      : bytes_(&bytes), bit_count_(bit_count) {}

  /// Reads `bits` bits; returns nullopt past the end.
  std::optional<std::uint64_t> read(std::uint32_t bits);

  std::uint64_t remaining() const noexcept { return bit_count_ - cursor_; }

 private:
  const std::vector<std::uint8_t>* bytes_;
  std::uint64_t bit_count_;
  std::uint64_t cursor_ = 0;
};

// --- Encoders: each writes exactly the size the accounting model charges --

/// Vote intention H_u: q * (value_bits + label_bits) bits.
void encode_intention(BitWriter& w, const ProtocolParams& params,
                      const VoteIntention& intention);
std::optional<VoteIntention> decode_intention(BitReader& r,
                                              const ProtocolParams& params);
/// Checked variant: kTruncated on a short stream, kRangeViolation on a
/// vote target >= n (labels must name real agents).
WireResult<VoteIntention> decode_intention_checked(
    BitReader& r, const ProtocolParams& params);

/// Single vote: value_bits bits.
void encode_vote(BitWriter& w, const ProtocolParams& params,
                 std::uint64_t value);
std::optional<std::uint64_t> decode_vote(BitReader& r,
                                         const ProtocolParams& params);

/// Certificate (k, W, c, owner) with a |W| count prefix.
void encode_certificate(BitWriter& w, const ProtocolParams& params,
                        const Certificate& certificate);
std::optional<Certificate> decode_certificate(BitReader& r,
                                              const ProtocolParams& params);
/// Checked variant: kTruncated on a short stream, kCountOverflow when the
/// vote-count prefix exceeds n*q (the domain bound — guards the reserve),
/// kRangeViolation on a voter/owner label >= n or a voting round >= q.
WireResult<Certificate> decode_certificate_checked(
    BitReader& r, const ProtocolParams& params);

/// Bits the count prefix of a certificate costs: the vote multiset has at
/// most n*q elements.
std::uint32_t certificate_count_bits(const ProtocolParams& params) noexcept;

/// Exact encoded size of a certificate (bit_size() + count prefix).
std::uint64_t encoded_certificate_bits(const ProtocolParams& params,
                                       const Certificate& c) noexcept;

}  // namespace rfc::core
