#include "analysis/fairness.hpp"

#include <map>

#include "analysis/montecarlo.hpp"

namespace rfc::analysis {

FairnessReport measure_fairness(const core::RunConfig& base,
                                std::uint64_t trials, std::size_t threads) {
  const auto results = run_trials<core::RunResult>(
      trials, base.seed,
      [&base](std::uint64_t seed, std::size_t) {
        core::RunConfig cfg = base;
        cfg.seed = seed;
        return core::run_protocol(cfg);
      },
      threads);

  FairnessReport report;
  report.trials = trials;

  std::map<core::Color, std::uint64_t> wins;
  std::map<core::Color, double> expected_sum;
  for (const core::RunResult& r : results) {
    report.rounds.add(static_cast<double>(r.rounds));
    report.total_bits.add(static_cast<double>(r.metrics.total_bits));
    report.max_message_bits.add(
        static_cast<double>(r.metrics.max_message_bits));
    if (r.failed()) {
      ++report.failures;
    } else {
      ++wins[r.winner];
    }
    const double active = static_cast<double>(r.num_active);
    for (const auto& [color, count] : r.active_colors) {
      expected_sum[color] += static_cast<double>(count) / active;
    }
  }

  const std::uint64_t successes = trials - report.failures;
  std::vector<std::uint64_t> observed;
  std::vector<double> expected_probs;
  for (const auto& [color, exp_sum] : expected_sum) {
    ColorShare share;
    share.color = color;
    share.expected = exp_sum / static_cast<double>(trials);
    share.wins = wins.count(color) ? wins.at(color) : 0;
    share.observed = successes
                         ? static_cast<double>(share.wins) /
                               static_cast<double>(successes)
                         : 0.0;
    share.ci = rfc::support::wilson_interval(share.wins, successes);
    share.within_ci = share.ci.contains(share.expected);
    observed.push_back(share.wins);
    expected_probs.push_back(share.expected);
    report.shares.push_back(share);
  }
  report.chi = rfc::support::chi_square_gof(observed, expected_probs);
  return report;
}

}  // namespace rfc::analysis
