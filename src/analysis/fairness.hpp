// Fairness measurement (Theorem 4): over many independent executions, the
// empirical winning-color distribution must match the initial color
// histogram of the *active* agents.
#pragma once

#include <cstdint>
#include <vector>

#include "core/runner.hpp"
#include "support/chi_square.hpp"
#include "support/stats.hpp"

namespace rfc::analysis {

struct ColorShare {
  core::Color color = core::kNoColor;
  double expected = 0.0;        ///< Mean N(A,c)/|A| across trials.
  std::uint64_t wins = 0;
  double observed = 0.0;        ///< wins / successful trials.
  rfc::support::Interval ci;    ///< Wilson 95% interval on `observed`.
  bool within_ci = false;       ///< expected ∈ ci.
};

struct FairnessReport {
  std::uint64_t trials = 0;
  std::uint64_t failures = 0;   ///< Executions that ended in ⊥.
  std::vector<ColorShare> shares;
  rfc::support::ChiSquareResult chi;  ///< GOF of wins vs expected shares.
  rfc::support::OnlineStats rounds;
  rfc::support::OnlineStats total_bits;
  rfc::support::OnlineStats max_message_bits;
  double failure_rate() const noexcept {
    return trials ? static_cast<double>(failures) /
                        static_cast<double>(trials)
                  : 0.0;
  }
};

/// Runs `trials` executions of Protocol P from `base` (varying only the
/// seed) and aggregates the fairness evidence.
FairnessReport measure_fairness(const core::RunConfig& base,
                                std::uint64_t trials, std::size_t threads = 0);

}  // namespace rfc::analysis
