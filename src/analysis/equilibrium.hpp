// Equilibrium measurement (Theorem 7): for every implemented coalition
// deviation, compare the coalition's win probability and the beneficiary's
// expected utility against honest play.
//
// Setup: a coalition of the first t labels supports color 1; every honest
// agent supports color 0.  Fair play gives color 1 a winning probability of
// exactly t/|A| (the coalition's fair share).  A deviation "profits" only if
// it pushes the beneficiary's expected utility
//     u = Pr[color 1 wins] - χ · Pr[⊥]
// above the honest baseline t/|A| — Theorem 7 says no deviation can, w.h.p.
#pragma once

#include <cstdint>
#include <vector>

#include "rational/strategies.hpp"
#include "sim/fault_model.hpp"
#include "sim/scheduler_spec.hpp"
#include "support/stats.hpp"

namespace rfc::analysis {

struct DeviationConfig {
  std::uint32_t n = 0;
  double gamma = 4.0;
  std::uint64_t seed = 1;
  std::uint32_t coalition_size = 1;
  rational::DeviationStrategy strategy = rational::DeviationStrategy::kHonest;
  bool strict_verification = true;
  std::uint32_t num_faulty = 0;
  /// Faults are placed at the suffix so they never overlap the (prefix)
  /// coalition and |C|, |A| stay exact.
  sim::FaultPlacement placement = sim::FaultPlacement::kSuffix;
  /// Activation policy for every trial (default: the paper's synchronous
  /// model, under which Theorem 7 is claimed).
  sim::SchedulerSpec scheduler;
};

struct DeviationReport {
  rational::DeviationStrategy strategy =
      rational::DeviationStrategy::kHonest;
  std::uint32_t coalition_size = 0;
  std::uint64_t trials = 0;
  std::uint64_t coalition_wins = 0;  ///< Winner color == coalition color.
  std::uint64_t failures = 0;        ///< Outcome ⊥.
  double fair_share = 0.0;           ///< |C| / |A|.

  double win_rate() const noexcept {
    return trials ? static_cast<double>(coalition_wins) /
                        static_cast<double>(trials)
                  : 0.0;
  }
  double fail_rate() const noexcept {
    return trials ? static_cast<double>(failures) /
                        static_cast<double>(trials)
                  : 0.0;
  }
  rfc::support::Interval win_ci() const noexcept {
    return rfc::support::wilson_interval(coalition_wins, trials);
  }
  /// Beneficiary expected utility under the paper's payoff scheme
  /// (util = 1 on own color, 0 on any other color, -χ on ⊥).
  double utility(double chi) const noexcept {
    return win_rate() - chi * fail_rate();
  }
  /// True when the deviation did NOT significantly beat the fair share.
  bool equilibrium_holds(double slack = 0.0) const noexcept {
    return win_ci().lo <= fair_share + slack;
  }
};

DeviationReport measure_deviation(const DeviationConfig& cfg,
                                  std::uint64_t trials,
                                  std::size_t threads = 0);

}  // namespace rfc::analysis
