#include "analysis/scaling.hpp"

#include <cmath>

#include "analysis/montecarlo.hpp"

namespace rfc::analysis {

double ScalingPoint::rounds_per_log_n() const {
  return rounds.mean() / std::log(static_cast<double>(n));
}

double ScalingPoint::max_msg_per_log2_n() const {
  const double l = std::log2(static_cast<double>(n));
  return max_message_bits.mean() / (l * l);
}

double ScalingPoint::bits_per_n_log3_n() const {
  const double l = std::log2(static_cast<double>(n));
  return total_bits.mean() / (static_cast<double>(n) * l * l * l);
}

rfc::support::PowerFit ScalingSweep::total_bits_fit() const {
  std::vector<double> x, y;
  x.reserve(points.size());
  y.reserve(points.size());
  for (const ScalingPoint& p : points) {
    x.push_back(static_cast<double>(p.n));
    y.push_back(p.total_bits.mean());
  }
  return rfc::support::fit_power(x, y);
}

ScalingSweep measure_scaling(const core::RunConfig& base,
                             const std::vector<std::uint32_t>& sizes,
                             std::uint64_t trials, std::size_t threads) {
  ScalingSweep sweep;
  // One pool for the whole sweep: per-trial seeds keep results independent
  // of worker count, so reuse costs nothing but thread start-up saved.
  rfc::support::ThreadPool pool(threads);
  for (const std::uint32_t n : sizes) {
    core::RunConfig cfg = base;
    cfg.n = n;
    cfg.colors.clear();  // Leader election: the heaviest color space.
    // base.num_faulty is absolute; clamp so small sweep points stay valid.
    cfg.num_faulty = std::min(base.num_faulty, n - 1);

    ScalingPoint point;
    point.n = n;
    point.trials = trials;

    const auto results = run_trials<core::RunResult>(
        pool, trials, cfg.seed, [&cfg](std::uint64_t seed, std::size_t) {
          core::RunConfig run = cfg;
          run.seed = seed;
          return core::run_protocol(run);
        });
    for (const core::RunResult& r : results) {
      point.rounds.add(static_cast<double>(r.rounds));
      point.max_message_bits.add(
          static_cast<double>(r.metrics.max_message_bits));
      point.total_bits.add(static_cast<double>(r.metrics.total_bits));
      point.messages.add(static_cast<double>(r.metrics.messages()));
      point.min_votes.add(static_cast<double>(r.events.min_votes));
      point.max_votes.add(static_cast<double>(r.events.max_votes));
      point.local_memory_bits.add(
          static_cast<double>(r.max_local_memory_bits));
      if (r.failed()) ++point.failures;
    }
    sweep.points.push_back(std::move(point));
  }
  return sweep;
}

}  // namespace rfc::analysis
