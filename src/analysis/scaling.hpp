// Scaling measurement: sweeps n, aggregates the cost metrics of Protocol P,
// and fits them against the paper's asymptotic claims (Theorem 4):
// rounds = O(log n), max message = O(log^2 n), total bits = O(n log^3 n).
#pragma once

#include <cstdint>
#include <vector>

#include "core/runner.hpp"
#include "support/regression.hpp"
#include "support/stats.hpp"

namespace rfc::analysis {

struct ScalingPoint {
  std::uint32_t n = 0;
  rfc::support::OnlineStats rounds;
  rfc::support::OnlineStats max_message_bits;
  rfc::support::OnlineStats total_bits;
  rfc::support::OnlineStats messages;
  rfc::support::OnlineStats min_votes;  ///< Per-trial fewest votes received.
  rfc::support::OnlineStats max_votes;  ///< Per-trial most votes received.
  rfc::support::OnlineStats local_memory_bits;  ///< Per-trial max footprint.
  std::uint64_t failures = 0;
  std::uint64_t trials = 0;

  // Normalized forms: flat across n confirms the claimed asymptotics.
  double rounds_per_log_n() const;
  double max_msg_per_log2_n() const;
  double bits_per_n_log3_n() const;
};

struct ScalingSweep {
  std::vector<ScalingPoint> points;
  /// Power-law fit of mean total bits vs n (exponent ≈ 1 + o(1) for P,
  /// exactly 2 for the LOCAL baseline).
  rfc::support::PowerFit total_bits_fit() const;
};

/// Runs `trials` executions of Protocol P per network size, varying only
/// the seed; `base` supplies γ, faults, verification mode, and the
/// scheduler spec (its n and colors are replaced per point;
/// leader-election colors are used).
ScalingSweep measure_scaling(const core::RunConfig& base,
                             const std::vector<std::uint32_t>& sizes,
                             std::uint64_t trials, std::size_t threads = 0);

}  // namespace rfc::analysis
