// Parallel Monte-Carlo trial runner.
//
// Determinism: trial i always runs with seed derive_seed(base_seed, i), so
// results are byte-identical regardless of thread count; only scheduling
// varies.  Each trial builds its own single-threaded engine, which keeps the
// simulator free of synchronization entirely.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace rfc::analysis {

/// Runs `trials` independent trials of `trial(seed, index)` on an existing
/// pool and returns the results in index order.  Reusing one pool across
/// many sweep points (see analysis::measure_scaling) avoids paying thread
/// start-up per point.
template <typename Result>
std::vector<Result> run_trials(
    rfc::support::ThreadPool& pool, std::uint64_t trials,
    std::uint64_t base_seed,
    const std::function<Result(std::uint64_t seed, std::size_t index)>&
        trial) {
  std::vector<Result> results(trials);
  rfc::support::parallel_for(
      pool, static_cast<std::size_t>(trials), [&](std::size_t i) {
        results[i] = trial(rfc::support::derive_seed(base_seed, i), i);
      });
  return results;
}

/// Convenience: the same on a transient pool of `threads` workers
/// (0 = hardware concurrency).
template <typename Result>
std::vector<Result> run_trials(
    std::uint64_t trials, std::uint64_t base_seed,
    const std::function<Result(std::uint64_t seed, std::size_t index)>& trial,
    std::size_t threads = 0) {
  rfc::support::ThreadPool pool(threads);
  return run_trials<Result>(pool, trials, base_seed, trial);
}

}  // namespace rfc::analysis
