#include "analysis/equilibrium.hpp"

#include "analysis/montecarlo.hpp"
#include "core/runner.hpp"

namespace rfc::analysis {

namespace {
constexpr core::Color kHonestColor = 0;
constexpr core::Color kCoalitionColor = 1;
}  // namespace

DeviationReport measure_deviation(const DeviationConfig& cfg,
                                  std::uint64_t trials,
                                  std::size_t threads) {
  // Coalition = first t labels, beneficiary = label 0; faults at the suffix
  // keep the coalition and the fair share exact.
  const rational::CoalitionPtr coalition =
      rational::make_prefix_coalition(cfg.coalition_size);

  core::RunConfig base;
  base.n = cfg.n;
  base.gamma = cfg.gamma;
  base.strict_verification = cfg.strict_verification;
  base.num_faulty = cfg.num_faulty;
  base.placement = cfg.num_faulty == 0 ? sim::FaultPlacement::kNone
                                       : cfg.placement;
  base.colors.assign(cfg.n, kHonestColor);
  for (std::uint32_t i = 0; i < cfg.coalition_size; ++i) {
    base.colors[i] = kCoalitionColor;
  }
  base.coalition = coalition->members();
  base.factory = rational::make_deviating_factory(cfg.strategy, coalition);
  base.scheduler = cfg.scheduler;

  DeviationReport report;
  report.strategy = cfg.strategy;
  report.coalition_size = cfg.coalition_size;
  report.trials = trials;

  const std::uint32_t active = cfg.n - cfg.num_faulty;
  report.fair_share = static_cast<double>(cfg.coalition_size) /
                      static_cast<double>(active);

  const auto results = run_trials<core::RunResult>(
      trials, cfg.seed,
      [&base, &cfg](std::uint64_t seed, std::size_t) {
        core::RunConfig run = base;
        run.seed = seed;
        // Every trial needs its own blackboard: coalition state is mutable
        // per-execution.
        const rational::CoalitionPtr fresh =
            rational::make_prefix_coalition(cfg.coalition_size);
        run.factory = rational::make_deviating_factory(cfg.strategy, fresh);
        return core::run_protocol(run);
      },
      threads);

  for (const core::RunResult& r : results) {
    if (r.failed()) {
      ++report.failures;
    } else if (r.winner == kCoalitionColor) {
      ++report.coalition_wins;
    }
  }
  return report;
}

}  // namespace rfc::analysis
