#include "support/math_util.hpp"

#include <algorithm>
#include <cmath>

namespace rfc::support {

double ln(double x) noexcept { return std::log(x); }

std::uint32_t round_count(double gamma, std::uint64_t n) noexcept {
  const double q = std::ceil(gamma * std::log(static_cast<double>(std::max<std::uint64_t>(n, 2))));
  return static_cast<std::uint32_t>(std::max(1.0, q));
}

}  // namespace rfc::support
