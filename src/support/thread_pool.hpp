// A minimal work-stealing-free thread pool plus a deterministic
// `parallel_for` used to run Monte-Carlo trials across cores.
//
// Determinism contract: the *work* given to index i must derive all its
// randomness from i (e.g. via derive_seed(master, i)); the pool only controls
// scheduling, never the per-index results, so runs are reproducible
// regardless of thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rfc::support {

class ThreadPool {
 public:
  /// `threads == 0` means hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks may not themselves block on the pool.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs body(i) for i in [0, count) across the pool, blocking until done.
/// Exceptions inside `body` terminate (they indicate a bug in experiment
/// code, not a recoverable condition).
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Convenience: one-shot parallel_for on a transient pool sized `threads`
/// (0 = hardware concurrency).
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace rfc::support
