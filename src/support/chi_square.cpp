#include "support/chi_square.hpp"

#include <cmath>
#include <limits>
#include <numeric>

namespace rfc::support {
namespace {

/// Lower incomplete gamma by series expansion: P(s, x), valid for x < s + 1.
double gamma_p_series(double s, double x) noexcept {
  double sum = 1.0 / s;
  double term = sum;
  for (int k = 1; k < 1000; ++k) {
    term *= x / (s + k);
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + s * std::log(x) - std::lgamma(s));
}

/// Upper incomplete gamma by continued fraction: Q(s, x), valid for x >= s+1.
double gamma_q_cf(double s, double x) noexcept {
  const double tiny = 1e-300;
  double b = x + 1.0 - s;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 1000; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - s);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return std::exp(-x + s * std::log(x) - std::lgamma(s)) * h;
}

}  // namespace

double regularized_gamma_q(double s, double x) noexcept {
  if (x <= 0.0) return 1.0;
  if (s <= 0.0) return 0.0;
  if (x < s + 1.0) return 1.0 - gamma_p_series(s, x);
  return gamma_q_cf(s, x);
}

double chi_square_sf(double statistic, std::uint32_t dof) noexcept {
  if (dof == 0) return 1.0;
  return regularized_gamma_q(static_cast<double>(dof) / 2.0, statistic / 2.0);
}

ChiSquareResult chi_square_gof(const std::vector<std::uint64_t>& observed,
                               const std::vector<double>& expected_probs) {
  ChiSquareResult r;
  const std::uint64_t total =
      std::accumulate(observed.begin(), observed.end(), std::uint64_t{0});
  const double prob_sum =
      std::accumulate(expected_probs.begin(), expected_probs.end(), 0.0);
  if (total == 0 || prob_sum <= 0.0 ||
      observed.size() != expected_probs.size()) {
    return r;
  }
  std::uint32_t cells = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double e =
        static_cast<double>(total) * expected_probs[i] / prob_sum;
    if (e == 0.0) {
      if (observed[i] != 0) {
        r.statistic = std::numeric_limits<double>::infinity();
        r.p_value = 0.0;
      }
      continue;
    }
    ++cells;
    const double d = static_cast<double>(observed[i]) - e;
    r.statistic += d * d / e;
  }
  r.dof = cells > 0 ? cells - 1 : 0;
  if (!std::isinf(r.statistic)) {
    r.p_value = chi_square_sf(r.statistic, r.dof);
  }
  return r;
}

}  // namespace rfc::support
