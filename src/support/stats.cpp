#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rfc::support {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::sem() const noexcept {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
  }
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t seen = underflow_;
  if (seen > target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) return (bucket_lo(i) + bucket_hi(i)) / 2.0;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

std::uint64_t OutcomeCounter::count(std::int64_t outcome) const noexcept {
  const auto it = counts_.find(outcome);
  return it == counts_.end() ? 0 : it->second;
}

double OutcomeCounter::fraction(std::int64_t outcome) const noexcept {
  return total_ == 0
             ? 0.0
             : static_cast<double>(count(outcome)) / static_cast<double>(total_);
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z) noexcept {
  if (trials == 0) return {0.0, 1.0};
  const auto n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

}  // namespace rfc::support
