// Small integer / floating-point helpers shared across the library.
#pragma once

#include <cstdint>

namespace rfc::support {

/// floor(log2(x)) for x >= 1.
constexpr std::uint32_t floor_log2(std::uint64_t x) noexcept {
  std::uint32_t r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// ceil(log2(x)) for x >= 1; the number of bits needed to address x values.
constexpr std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return floor_log2(x - 1) + 1;
}

/// Number of bits needed to encode a value drawn from {0, ..., x-1}.
/// At least 1 so that even a unary domain costs one bit on the wire.
constexpr std::uint32_t bit_width_for_domain(std::uint64_t x) noexcept {
  const std::uint32_t b = ceil_log2(x);
  return b == 0 ? 1 : b;
}

/// x^3 without overflow checks beyond the documented domain (x <= 2^21,
/// so x^3 <= 2^63).  The protocol's vote space is m = n^3.
constexpr std::uint64_t cube(std::uint64_t x) noexcept { return x * x * x; }

/// Natural logarithm of n, as the paper's `log n`; callers that need a round
/// count use ceil(gamma * ln n) via `round_count`.
double ln(double x) noexcept;

/// The per-phase round count q = ceil(gamma * ln n), with a floor of 1.
std::uint32_t round_count(double gamma, std::uint64_t n) noexcept;

}  // namespace rfc::support
