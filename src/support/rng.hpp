// Deterministic, splittable pseudo-random number generation.
//
// All randomness in the library flows through these generators so that every
// simulation is exactly reproducible from a single master seed.  Independent
// streams (one per agent, one per Monte-Carlo trial) are derived with
// SplitMix64, the recommended seeding procedure for the xoshiro family.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace rfc::support {

/// SplitMix64: a tiny, statistically solid 64-bit generator.  Used both as a
/// stand-alone generator and as the seed-expansion function for Xoshiro256.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// This is the workhorse generator of the simulator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by expanding `seed` through SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    this->seed(seed);
  }

  /// Tag for deferred seeding: constructs with zeroed state at memset cost,
  /// skipping the SplitMix expansion.  `seed()` must run before the first
  /// draw (a zero state is an absorbing fixed point of xoshiro).  Lets bulk
  /// consumers (one stream per agent) allocate cheaply and derive streams
  /// later — in parallel, or not at all for streams that never draw.
  struct Unseeded {};
  explicit Xoshiro256(Unseeded) noexcept : state_{} {}

  /// (Re)seeds the state by expanding `seed` through SplitMix64; yields the
  /// exact stream of Xoshiro256(seed).
  void seed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Unbiased uniform draw in [0, bound).  `bound` must be positive.
  /// Uses Lemire's multiply-shift rejection method.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform draw in the closed interval [lo, hi].
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  bool bernoulli(double p) noexcept { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

/// Derives a statistically independent child seed from a (seed, stream-id)
/// pair.  Used to give every agent and every Monte-Carlo trial its own
/// generator without any cross-stream correlation.
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream) noexcept;

}  // namespace rfc::support
