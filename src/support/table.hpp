// ASCII table rendering for benchmark / experiment output.  Every bench
// binary prints its table through this so the regenerated "paper tables"
// share one format.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rfc::support {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Formatting helpers for numeric cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(std::uint64_t v);
  static std::string fmt_pct(double fraction, int precision = 1);

  std::string render() const;
  /// Renders with a caption line above the table.
  std::string render(const std::string& caption) const;

  /// RFC-4180-style CSV rendering (quotes cells containing , " or newline).
  std::string to_csv() const;
  /// Writes to_csv() to `path`; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rfc::support
