#include "support/cli.hpp"

#include <stdexcept>

#include "support/parse.hpp"

namespace rfc::support {

namespace {

[[noreturn]] void bad_numeric(const std::string& name,
                              const std::string& value,
                              const char* expected) {
  throw std::invalid_argument("--" + name + ": expected " + expected +
                              ", got \"" + value + "\"");
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  std::int64_t value = 0;
  if (!parse_int64(it->second, value)) {
    bad_numeric(name, it->second, "an integer");
  }
  return value;
}

std::uint64_t CliArgs::get_uint(const std::string& name,
                                std::uint64_t def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  std::uint64_t value = 0;
  if (!parse_uint64(it->second, value)) {
    bad_numeric(name, it->second, "a non-negative integer");
  }
  return value;
}

double CliArgs::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  double value = 0.0;
  if (!parse_number(it->second, value)) {
    bad_numeric(name, it->second, "a number");
  }
  return value;
}

bool CliArgs::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace rfc::support
