#include "support/regression.hpp"

#include <cmath>

namespace rfc::support {

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  LinearFit f;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return f;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const auto dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return f;
  f.slope = (dn * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / dn;
  const double ss_tot = syy - sy * sy / dn;
  double ss_res = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = y[i] - f.predict(x[i]);
    ss_res += r * r;
  }
  f.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

double PowerFit::predict(double x) const noexcept {
  return coefficient * std::pow(x, exponent);
}

PowerFit fit_power(const std::vector<double>& x,
                   const std::vector<double>& y) {
  std::vector<double> lx, ly;
  const std::size_t n = std::min(x.size(), y.size());
  lx.reserve(n);
  ly.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] > 0 && y[i] > 0) {
      lx.push_back(std::log(x[i]));
      ly.push_back(std::log(y[i]));
    }
  }
  const LinearFit lin = fit_linear(lx, ly);
  PowerFit p;
  p.coefficient = std::exp(lin.intercept);
  p.exponent = lin.slope;
  p.r_squared = lin.r_squared;
  return p;
}

}  // namespace rfc::support
