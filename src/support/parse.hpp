// Strict full-string numeric parsing, shared by every layer that turns
// user-supplied text into numbers (support::CliArgs flags,
// sim::SchedulerSpec parameters).  One rule set everywhere: base-10 only,
// the whole string must be consumed, out-of-range fails, and get_uint-style
// callers reject negative input instead of letting strtoull wrap it — so
// the same text can never parse differently on two paths, and a typo is
// reported rather than silently replaced by a default.
#pragma once

#include <cstdint>
#include <string>

namespace rfc::support {

/// Each returns false (leaving `out` untouched) unless `text` is a
/// well-formed, in-range, fully-consumed base-10 literal.
bool parse_int64(const std::string& text, std::int64_t& out) noexcept;
bool parse_uint64(const std::string& text, std::uint64_t& out) noexcept;
bool parse_number(const std::string& text, double& out) noexcept;

}  // namespace rfc::support
