#include "support/thread_pool.hpp"

#include <algorithm>

namespace rfc::support {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  // Chunked dispatch through an atomic cursor: cheap for large counts,
  // and per-index work remains a pure function of the index.
  const std::size_t workers = pool.thread_count();
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t jobs = std::min(workers, count);
  for (std::size_t j = 0; j < jobs; ++j) {
    pool.submit([cursor, count, &body] {
      for (;;) {
        const std::size_t i = cursor->fetch_add(1);
        if (i >= count) return;
        body(i);
      }
    });
  }
  pool.wait_idle();
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  ThreadPool pool(threads);
  parallel_for(pool, count, body);
}

}  // namespace rfc::support
