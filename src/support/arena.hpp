// A per-round bump allocator for message payloads.
//
// The engine's boxed payloads (certificates, vote intentions, async
// replies) are produced in bursts inside a round and consumed before the
// next one: every shipped consumer copies the value out in its delivery
// hook, nothing retains the box.  make_shared pays one heap allocation
// plus a control block per message for that lifetime; an Arena pays a
// pointer bump.  EngineCore owns one arena per shard, hands it to agents
// through Context::arena, and resets it at the shard barrier (the start
// of the next round) — so an arena-boxed payload is valid for exactly one
// round, the natural lifetime of a message.
//
// Design:
//   * chunked bump allocation — fixed-size chunks allocated on demand and
//     *kept* across reset(), so a steady-state round allocates nothing;
//   * objects larger than a chunk get a dedicated exact-size chunk
//     (freed on reset — oversized bursts don't pin memory forever);
//   * non-trivially-destructible objects register a finalizer, run in
//     reverse construction order by reset()/destruction — arena payloads
//     may own heap state (a VoteIntention's vector) without leaking.
//
// Arena is NOT thread-safe: one arena per shard, by construction touched
// only by that shard's phase task (the same ownership discipline as the
// per-agent RNG streams).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace rfc::support {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes) noexcept
      : chunk_bytes_(chunk_bytes) {}
  ~Arena() { release_all(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw storage of `size` bytes aligned to `align` (a power of two).
  /// Never returns null; falls back to a dedicated chunk for objects that
  /// cannot fit a standard chunk.
  void* allocate(std::size_t size, std::size_t align);

  /// Constructs a T in the arena.  The object lives until reset() (or the
  /// arena's destruction); its destructor runs then, in reverse
  /// construction order.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    void* mem = allocate(sizeof(T), alignof(T));
    T* obj = ::new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      finalizers_.push_back(
          Finalizer{obj, [](void* p) { static_cast<T*>(p)->~T(); }});
    }
    return obj;
  }

  /// Destroys every object (reverse construction order), frees oversized
  /// chunks, and rewinds the standard chunks for reuse — the steady state
  /// allocates nothing.
  void reset();

  // --- Introspection (tests, memory accounting) ---------------------------
  std::size_t bytes_allocated() const noexcept { return bytes_allocated_; }
  std::size_t chunk_count() const noexcept { return chunks_.size(); }
  std::uint64_t total_resets() const noexcept { return total_resets_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
    bool oversized = false;  ///< Dedicated large-object chunk; freed on reset.
  };
  struct Finalizer {
    void* object;
    void (*destroy)(void*);
  };

  void release_all();

  std::size_t chunk_bytes_;
  std::size_t current_ = 0;  ///< Index of the chunk being bumped.
  std::size_t bytes_allocated_ = 0;  ///< Live bytes since the last reset.
  std::uint64_t total_resets_ = 0;
  std::vector<Chunk> chunks_;
  std::vector<Finalizer> finalizers_;
};

}  // namespace rfc::support
