// Streaming statistics, histograms, and confidence intervals.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rfc::support {

/// Numerically stable streaming mean / variance (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean.
  double sem() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }
  std::size_t buckets() const noexcept { return counts_.size(); }
  double bucket_lo(std::size_t i) const noexcept;
  double bucket_hi(std::size_t i) const noexcept;

  /// Quantile estimate from bucket midpoints; q in [0, 1].
  double quantile(double q) const noexcept;

  /// Multi-line ASCII rendering, useful in example programs.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Counts of discrete outcomes keyed by integer label (e.g. winning colors).
class OutcomeCounter {
 public:
  void add(std::int64_t outcome) noexcept { ++counts_[outcome]; ++total_; }
  std::uint64_t count(std::int64_t outcome) const noexcept;
  double fraction(std::int64_t outcome) const noexcept;
  std::uint64_t total() const noexcept { return total_; }
  const std::map<std::int64_t, std::uint64_t>& counts() const noexcept {
    return counts_;
  }

 private:
  std::map<std::int64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Wilson score interval for a binomial proportion at confidence `z` sigmas
/// (z = 1.96 for 95%).  Robust for small counts and extreme proportions.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  bool contains(double p) const noexcept { return lo <= p && p <= hi; }
};
Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z = 1.96) noexcept;

}  // namespace rfc::support
