// A tiny command-line flag parser for example and bench binaries.
// Supports `--name=value`, `--name value`, and boolean `--name`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rfc::support {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  /// Numeric getters return `def` when the flag is absent and throw
  /// std::invalid_argument naming the flag and the offending text when the
  /// value is present but malformed (`--n=abc`, `--n=`, trailing junk,
  /// a negative value for get_uint) — a typo must not silently run the
  /// experiment with defaults.
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  std::uint64_t get_uint(const std::string& name, std::uint64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace rfc::support
