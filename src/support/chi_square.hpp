// Chi-square goodness-of-fit testing, used to verify the protocol's
// fairness guarantee (empirical winning-color distribution vs the initial
// color histogram).
#pragma once

#include <cstdint>
#include <vector>

namespace rfc::support {

/// Result of a goodness-of-fit test.
struct ChiSquareResult {
  double statistic = 0.0;   ///< Sum over cells of (obs - exp)^2 / exp.
  std::uint32_t dof = 0;    ///< Degrees of freedom (cells - 1).
  double p_value = 1.0;     ///< P(X >= statistic) under H0.
  bool rejected(double alpha) const noexcept { return p_value < alpha; }
};

/// Regularized upper incomplete gamma function Q(s, x) = Γ(s,x)/Γ(s).
/// Used for the chi-square survival function; accurate to ~1e-12 over the
/// ranges exercised by the experiments.
double regularized_gamma_q(double s, double x) noexcept;

/// Chi-square survival function with `dof` degrees of freedom.
double chi_square_sf(double statistic, std::uint32_t dof) noexcept;

/// Goodness-of-fit of observed counts against expected *probabilities*
/// (which are normalized internally).  Cells with zero expectation must have
/// zero observations, otherwise the statistic is +infinity.
ChiSquareResult chi_square_gof(const std::vector<std::uint64_t>& observed,
                               const std::vector<double>& expected_probs);

}  // namespace rfc::support
