#include "support/arena.hpp"

#include <algorithm>

namespace rfc::support {

namespace {

inline std::uintptr_t align_up(std::uintptr_t value,
                               std::size_t align) noexcept {
  return (value + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
}

}  // namespace

void* Arena::allocate(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  // Objects that cannot fit a standard chunk get a dedicated one (freed on
  // reset); `+ align` guarantees an aligned pointer exists inside it.
  if (size + align > chunk_bytes_) {
    Chunk c;
    c.capacity = size + align;
    c.data = std::unique_ptr<std::byte[]>(new std::byte[c.capacity]);
    c.used = c.capacity;
    c.oversized = true;
    const std::uintptr_t base =
        reinterpret_cast<std::uintptr_t>(c.data.get());
    void* p = c.data.get() + (align_up(base, align) - base);
    chunks_.push_back(std::move(c));
    bytes_allocated_ += size;
    return p;
  }
  for (;;) {
    if (current_ < chunks_.size()) {
      Chunk& c = chunks_[current_];
      if (!c.oversized) {
        const std::uintptr_t base =
            reinterpret_cast<std::uintptr_t>(c.data.get());
        const std::size_t offset = align_up(base + c.used, align) - base;
        if (offset + size <= c.capacity) {
          c.used = offset + size;
          bytes_allocated_ += size;
          return c.data.get() + offset;
        }
      }
      ++current_;  // Full (or oversized) chunk; try the next one.
      continue;
    }
    Chunk c;
    c.capacity = chunk_bytes_;
    c.data = std::unique_ptr<std::byte[]>(new std::byte[c.capacity]);
    current_ = chunks_.size();
    chunks_.push_back(std::move(c));
  }
}

void Arena::reset() {
  for (auto it = finalizers_.rbegin(); it != finalizers_.rend(); ++it) {
    it->destroy(it->object);
  }
  finalizers_.clear();
  chunks_.erase(std::remove_if(chunks_.begin(), chunks_.end(),
                               [](const Chunk& c) { return c.oversized; }),
                chunks_.end());
  for (Chunk& c : chunks_) c.used = 0;
  current_ = 0;
  bytes_allocated_ = 0;
  ++total_resets_;
}

void Arena::release_all() {
  for (auto it = finalizers_.rbegin(); it != finalizers_.rend(); ++it) {
    it->destroy(it->object);
  }
  finalizers_.clear();
  chunks_.clear();
}

}  // namespace rfc::support
