#include "support/table.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace rfc::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_int(std::uint64_t v) {
  // Groups digits with apostrophes for readability: 1'234'567.
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back('\'');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string Table::fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto line = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  }();
  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      s += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };
  std::string out = line + render_row(headers_) + line;
  for (const auto& row : rows_) out += render_row(row);
  out += line;
  return out;
}

std::string Table::render(const std::string& caption) const {
  return caption + "\n" + render();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  return out + "\"";
}

}  // namespace

std::string Table::to_csv() const {
  std::string out;
  const auto append_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += csv_escape(row[c]);
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << to_csv();
  return static_cast<bool>(file);
}

}  // namespace rfc::support
