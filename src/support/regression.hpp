// Least-squares fitting used by the scaling experiments: fitting measured
// round counts / message bits against log n, log^2 n, log^3 n models.
#pragma once

#include <cstddef>
#include <vector>

namespace rfc::support {

/// Simple linear least squares y = a + b x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
  double predict(double x) const noexcept { return intercept + slope * x; }
};

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y);

/// Fits y = C * x^e in log-log space, returning the estimated exponent and
/// coefficient.  Used to confirm e.g. that total bits grow sub-quadratically.
struct PowerFit {
  double coefficient = 0.0;
  double exponent = 0.0;
  double r_squared = 0.0;
  double predict(double x) const noexcept;
};

PowerFit fit_power(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace rfc::support
