#include "support/rng.hpp"

namespace rfc::support {

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method: multiply-shift with a rejection
  // step that removes modulo bias entirely.
  std::uint64_t x = next();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<unsigned __int128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream) noexcept {
  // Feed the pair through two rounds of SplitMix64's finalizer so that
  // adjacent stream ids map to unrelated seeds.
  SplitMix64 sm(master ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  sm.next();
  return sm.next();
}

}  // namespace rfc::support
