#include "support/parse.hpp"

#include <cerrno>
#include <cstdlib>

namespace rfc::support {

bool parse_int64(const std::string& text, std::int64_t& out) noexcept {
  const char* c = text.c_str();
  char* end = nullptr;
  errno = 0;
  const std::int64_t value = std::strtoll(c, &end, 10);
  if (end == c || *end != '\0' || errno == ERANGE) return false;
  out = value;
  return true;
}

bool parse_uint64(const std::string& text, std::uint64_t& out) noexcept {
  const char* c = text.c_str();
  char* end = nullptr;
  errno = 0;
  const std::uint64_t value = std::strtoull(c, &end, 10);
  // strtoull silently wraps negative input; reject it explicitly.
  if (end == c || *end != '\0' || errno == ERANGE ||
      text.find('-') != std::string::npos) {
    return false;
  }
  out = value;
  return true;
}

bool parse_number(const std::string& text, double& out) noexcept {
  const char* c = text.c_str();
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(c, &end);
  if (end == c || *end != '\0' || errno == ERANGE) return false;
  out = value;
  return true;
}

}  // namespace rfc::support
