# Refuses to refresh BENCH_engine.json from a non-Release tree.
#
# Invoked as the first command of the bench-baseline target with
# -DENGINE_BUILD_TYPE=${CMAKE_BUILD_TYPE}.  The committed baseline is the
# engine-perf trajectory compared across PRs; numbers measured with
# assertions on or without -O3 are not comparable to it, and a baseline
# quietly regenerated from such a tree would read as a perf regression (or
# a fake win) to every later PR.
if(NOT ENGINE_BUILD_TYPE STREQUAL "Release")
  message(FATAL_ERROR
    "bench-baseline: this tree is configured as "
    "'${ENGINE_BUILD_TYPE}', not 'Release'.  BENCH_engine.json records "
    "Release numbers only — reconfigure with "
    "-DCMAKE_BUILD_TYPE=Release and rerun.")
endif()
