# Refuses to refresh BENCH_engine.json from a non-Release tree.
#
# Invoked as the first command of the bench-baseline target with
# -DENGINE_BUILD_TYPE=${CMAKE_BUILD_TYPE} and
# -DENGINE_RELEASE_FLAGS=${CMAKE_CXX_FLAGS_RELEASE}.  The committed
# baseline is the engine-perf trajectory compared across PRs; numbers
# measured with assertions on or without optimization are not comparable
# to it, and a baseline quietly regenerated from such a tree would read as
# a perf regression (or a fake win) to every later PR.
if(NOT ENGINE_BUILD_TYPE STREQUAL "Release")
  message(FATAL_ERROR
    "bench-baseline: this tree is configured as "
    "'${ENGINE_BUILD_TYPE}', not 'Release'.  BENCH_engine.json records "
    "Release numbers only — reconfigure with "
    "-DCMAKE_BUILD_TYPE=Release and rerun.")
endif()
# Closing the escape hatch: CMAKE_BUILD_TYPE=Release with overridden
# CMAKE_CXX_FLAGS_RELEASE (cleared by a cache edit or a toolchain file)
# would pass the name check yet benchmark an unoptimized or
# assertion-enabled engine.  Require the flags that make "Release" mean
# what the baseline assumes.
if(NOT ENGINE_RELEASE_FLAGS MATCHES "-O[123s]")
  message(FATAL_ERROR
    "bench-baseline: CMAKE_CXX_FLAGS_RELEASE is "
    "'${ENGINE_RELEASE_FLAGS}', which carries no optimization level — "
    "a 'Release' tree with overridden flags.  Restore -O2/-O3 before "
    "refreshing the baseline.")
endif()
if(NOT ENGINE_RELEASE_FLAGS MATCHES "-DNDEBUG")
  message(FATAL_ERROR
    "bench-baseline: CMAKE_CXX_FLAGS_RELEASE is "
    "'${ENGINE_RELEASE_FLAGS}', which does not define NDEBUG — asserts "
    "would run inside the measured rounds.  Restore -DNDEBUG before "
    "refreshing the baseline.")
endif()
