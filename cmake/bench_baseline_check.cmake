# Post-write sanity check of BENCH_engine.json, run as the last command of
# the bench-baseline target with -DBASELINE_FILE=<path>.
#
# The pre-run guard (bench_baseline_guard.cmake) refuses to *start* from a
# wrong tree; this check refuses to *keep* a baseline whose recorded
# context disagrees — e.g. a file edited by hand, a partial write from an
# interrupted run, or a benchmark binary that silently ignored the context
# flag.  Together they make "BENCH_engine.json is committed" mean "these
# are Release numbers" without trusting the invoker.
if(NOT EXISTS "${BASELINE_FILE}")
  message(FATAL_ERROR
    "bench-baseline: ${BASELINE_FILE} was not written — the benchmark run "
    "failed before producing output.")
endif()
file(READ "${BASELINE_FILE}" BASELINE_JSON)
if(NOT BASELINE_JSON MATCHES "\"engine_build_type\": \"Release\"")
  message(FATAL_ERROR
    "bench-baseline: ${BASELINE_FILE} does not record "
    "engine_build_type=Release in its context — refusing to keep it.  "
    "Regenerate from a Release tree with `make bench-baseline`.")
endif()
# Structural smoke test: a complete Google Benchmark JSON ends with the
# benchmarks array closed; an interrupted run truncates mid-array.
if(NOT BASELINE_JSON MATCHES "BM_EngineRumorRound")
  message(FATAL_ERROR
    "bench-baseline: ${BASELINE_FILE} is missing BM_EngineRumorRound — "
    "truncated or incomplete run; regenerate.")
endif()
message(STATUS "bench-baseline: ${BASELINE_FILE} verified (Release context)")
