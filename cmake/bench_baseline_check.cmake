# Post-write sanity check of BENCH_engine.json, run as the last command of
# the bench-baseline target with -DBASELINE_FILE=<path>.
#
# The pre-run guard (bench_baseline_guard.cmake) refuses to *start* from a
# wrong tree; this check refuses to *keep* a baseline whose recorded
# context disagrees — e.g. a file edited by hand, a partial write from an
# interrupted run, or a benchmark binary that silently ignored the context
# flag.  Together they make "BENCH_engine.json is committed" mean "these
# are Release numbers" without trusting the invoker.
if(NOT EXISTS "${BASELINE_FILE}")
  message(FATAL_ERROR
    "bench-baseline: ${BASELINE_FILE} was not written — the benchmark run "
    "failed before producing output.")
endif()
file(READ "${BASELINE_FILE}" BASELINE_JSON)
if(NOT BASELINE_JSON MATCHES "\"engine_build_type\": \"Release\"")
  message(FATAL_ERROR
    "bench-baseline: ${BASELINE_FILE} does not record "
    "engine_build_type=Release in its context — refusing to keep it.  "
    "Regenerate from a Release tree with `make bench-baseline`.")
endif()
# The Google Benchmark *library's* own build type.  A debug libbenchmark
# inflates the measurement harness overhead (timer reads, counter
# bookkeeping) around the engine code being measured, so by default the
# baseline is rejected unless the library itself was built Release.  Distro
# packages sometimes ship a debug build (Debian's libbenchmark does) that
# cannot be rebuilt on a sealed box — pass
# -DRFC_ALLOW_DEBUG_BENCHMARK_LIB=ON at configure time to accept the
# baseline anyway; the JSON keeps the honest "debug" context entry so
# readers can see which harness produced it.
string(REGEX MATCH "\"library_build_type\": \"([^\"]*)\"" _lbt_match
       "${BASELINE_JSON}")
string(TOLOWER "${CMAKE_MATCH_1}" LIBRARY_BUILD_TYPE)
if(NOT LIBRARY_BUILD_TYPE STREQUAL "release")
  if(ALLOW_DEBUG_BENCHMARK_LIB)
    message(WARNING
      "bench-baseline: Google Benchmark library_build_type is "
      "'${LIBRARY_BUILD_TYPE}', not 'release' — keeping the baseline "
      "because RFC_ALLOW_DEBUG_BENCHMARK_LIB=ON.  Harness overhead is "
      "inflated; compare against baselines from the same harness only.")
  else()
    message(FATAL_ERROR
      "bench-baseline: ${BASELINE_FILE} records Google Benchmark "
      "library_build_type='${LIBRARY_BUILD_TYPE}' — the benchmark harness "
      "itself was not a Release build.  Install or build a Release "
      "libbenchmark, or configure with -DRFC_ALLOW_DEBUG_BENCHMARK_LIB=ON "
      "to accept the inflated-harness baseline knowingly.")
  endif()
endif()
# Structural smoke test: a complete Google Benchmark JSON ends with the
# benchmarks array closed; an interrupted run truncates mid-array.
if(NOT BASELINE_JSON MATCHES "BM_EngineRumorRound")
  message(FATAL_ERROR
    "bench-baseline: ${BASELINE_FILE} is missing BM_EngineRumorRound — "
    "truncated or incomplete run; regenerate.")
endif()
message(STATUS "bench-baseline: ${BASELINE_FILE} verified (Release context)")
