// Quickstart: rational fair consensus in a dozen lines.
//
// A network of 1000 agents starts 60/40 split between two colors; Protocol P
// drives it to a monochromatic configuration in O(log n) rounds, and over
// many runs color 0 wins ~60% of the time — fairness by construction.
//
//   ./quickstart [--n=1000] [--trials=200] [--gamma=4] [--seed=7]
#include <cstdio>

#include "analysis/fairness.hpp"
#include "core/runner.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);

  rfc::core::RunConfig config;
  config.n = static_cast<std::uint32_t>(args.get_uint("n", 1000));
  config.gamma = args.get_double("gamma", 4.0);
  config.seed = args.get_uint("seed", 7);
  config.colors = rfc::core::split_colors(config.n, {0.6, 0.4});

  // One execution: run the protocol and look at the outcome.
  const rfc::core::RunResult run = rfc::core::run_protocol(config);
  std::printf("single run : winner color = %lld (agent %u), %llu rounds, "
              "%llu messages, largest message %llu bits\n",
              static_cast<long long>(run.winner), run.winner_agent,
              static_cast<unsigned long long>(run.rounds),
              static_cast<unsigned long long>(run.metrics.messages()),
              static_cast<unsigned long long>(run.metrics.max_message_bits));

  // Many executions: the winning frequency matches the initial shares.
  const auto trials = args.get_uint("trials", 200);
  const rfc::analysis::FairnessReport report =
      rfc::analysis::measure_fairness(config, trials);
  std::printf("over %llu runs: failures = %llu\n",
              static_cast<unsigned long long>(report.trials),
              static_cast<unsigned long long>(report.failures));
  for (const auto& share : report.shares) {
    std::printf("  color %lld: expected %.3f, observed %.3f  [%.3f, %.3f]\n",
                static_cast<long long>(share.color), share.expected,
                share.observed, share.ci.lo, share.ci.hi);
  }
  std::printf("chi-square p-value = %.3f (high = consistent with fairness)\n",
              report.chi.p_value);
  return 0;
}
