// Fair leader election under worst-case permanent faults.
//
// The special case the paper highlights: every agent's initial color is his
// own label, so fair consensus = electing a uniformly random *active* leader.
// We crash α·n agents with an adversarial placement and show that (a) the
// protocol still terminates, and (b) every active agent is elected with the
// same frequency — the faulty ones never.
//
//   ./leader_election [--n=64] [--alpha=0.3] [--gamma=6] [--trials=3000]
//                     [--placement=prefix|random|stride|clustered]
#include <cstdio>
#include <map>
#include <string>

#include "analysis/montecarlo.hpp"
#include "core/runner.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

namespace {

rfc::sim::FaultPlacement parse_placement(const std::string& name) {
  for (const auto p : rfc::sim::all_fault_placements()) {
    if (rfc::sim::to_string(p) == name) return p;
  }
  std::fprintf(stderr, "unknown placement '%s', using prefix\n", name.c_str());
  return rfc::sim::FaultPlacement::kPrefix;
}

}  // namespace

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_uint("n", 64));
  const double alpha = args.get_double("alpha", 0.3);
  const auto trials = args.get_uint("trials", 3000);

  rfc::core::RunConfig config;
  config.n = n;
  config.gamma = args.get_double("gamma", 6.0);
  config.num_faulty = static_cast<std::uint32_t>(alpha * n);
  config.placement = parse_placement(args.get("placement", "prefix"));
  config.scheduler =
      rfc::sim::SchedulerSpec::parse(args.get("scheduler", "synchronous"));
  // Leader election: colors default to labels.

  std::printf("fair leader election: n=%u, faulty=%u (%s placement), "
              "gamma=%.1f, scheduler=%s, %llu trials\n",
              n, config.num_faulty,
              rfc::sim::to_string(config.placement).c_str(), config.gamma,
              config.scheduler.to_string().c_str(),
              static_cast<unsigned long long>(trials));

  std::map<rfc::core::Color, std::uint64_t> elected;
  std::uint64_t failures = 0;
  rfc::support::OnlineStats rounds;
  const auto results = rfc::analysis::run_trials<rfc::core::RunResult>(
      trials, args.get_uint("seed", 11),
      [&config](std::uint64_t seed, std::size_t) {
        rfc::core::RunConfig cfg = config;
        cfg.seed = seed;
        return rfc::core::run_protocol(cfg);
      });
  for (const auto& r : results) {
    rounds.add(static_cast<double>(r.rounds));
    if (r.failed()) {
      ++failures;
    } else {
      ++elected[r.winner];
    }
  }

  const std::uint64_t successes = trials - failures;
  const std::uint32_t active = n - config.num_faulty;
  std::printf("failures: %llu / %llu;  mean rounds: %.1f\n",
              static_cast<unsigned long long>(failures),
              static_cast<unsigned long long>(trials), rounds.mean());
  std::printf("expected per-active-agent share: %.4f\n", 1.0 / active);

  // Histogram of election counts: faulty agents must be at zero, active
  // agents near trials/active.
  std::uint64_t faulty_wins = 0;
  rfc::support::OnlineStats share;
  for (std::uint32_t id = 0; id < n; ++id) {
    const auto it = elected.find(static_cast<rfc::core::Color>(id));
    const std::uint64_t wins = it == elected.end() ? 0 : it->second;
    const bool is_faulty_label =
        config.placement == rfc::sim::FaultPlacement::kPrefix &&
        id < config.num_faulty;
    if (is_faulty_label) {
      faulty_wins += wins;
    } else {
      share.add(static_cast<double>(wins) / static_cast<double>(successes));
    }
  }
  std::printf("faulty-label wins (must be 0 with prefix placement): %llu\n",
              static_cast<unsigned long long>(faulty_wins));
  std::printf("active-agent observed share: mean %.4f, min %.4f, max %.4f\n",
              share.mean(), share.min(), share.max());
  return 0;
}
