// Coalition attack demo: the same attack against Protocol P and against the
// naive verification-free gossip election.
//
// A coalition of t agents wants its color to win.  Against the naive
// protocol, the beneficiary simply claims the minimal key and wins every
// time.  Against Protocol P, every such manipulation is caught by the
// Commitment/Verification machinery: the coalition either gains nothing or
// drives the protocol to ⊥ (which costs the coalition -χ too).
//
//   ./coalition_attack [--n=256] [--t=8] [--trials=400] [--gamma=4]
#include <cstdio>

#include "analysis/equilibrium.hpp"
#include "baseline/naive_election.hpp"
#include "core/runner.hpp"
#include "rational/strategies.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_uint("n", 256));
  const auto t = static_cast<std::uint32_t>(args.get_uint("t", 8));
  const auto trials = args.get_uint("trials", 400);
  const double gamma = args.get_double("gamma", 4.0);

  std::printf("coalition of %u vs %u agents, fair share = %.3f\n\n", t, n,
              static_cast<double>(t) / n);

  // --- Attack on the naive baseline: one cheater suffices. ---------------
  std::uint64_t naive_wins = 0;
  for (std::uint64_t i = 0; i < trials; ++i) {
    rfc::baseline::NaiveElectionConfig cfg;
    cfg.n = n;
    cfg.gamma = gamma;
    cfg.seed = 1000 + i;
    cfg.colors.assign(n, 0);
    for (std::uint32_t j = 0; j < t; ++j) cfg.colors[j] = 1;
    cfg.cheaters = 1;  // Beneficiary claims key 0.
    const auto result = rfc::baseline::run_naive_election(cfg);
    if (result.winner == 1) ++naive_wins;
  }
  std::printf("naive gossip election, beneficiary claims key 0:\n");
  std::printf("  coalition win rate: %.3f  (fair share %.3f) -- broken\n\n",
              static_cast<double>(naive_wins) / trials,
              static_cast<double>(t) / n);

  // --- The same spirit of attack (and nine others) against Protocol P. ---
  rfc::support::Table table(
      {"deviation", "win rate", "fail rate", "utility(chi=1)", "verdict"});
  for (const auto strategy : rfc::rational::all_deviation_strategies()) {
    rfc::analysis::DeviationConfig cfg;
    cfg.n = n;
    cfg.gamma = gamma;
    cfg.coalition_size = t;
    cfg.strategy = strategy;
    cfg.seed = args.get_uint("seed", 29);
    const auto report = rfc::analysis::measure_deviation(cfg, trials);
    const double fair = report.fair_share;
    const bool profitable =
        report.win_ci().lo > fair || report.utility(1.0) > fair + 0.02;
    table.add_row({
        rfc::rational::to_string(strategy),
        rfc::support::Table::fmt(report.win_rate(), 3),
        rfc::support::Table::fmt(report.fail_rate(), 3),
        rfc::support::Table::fmt(report.utility(1.0), 3),
        profitable ? "PROFITABLE (!)" : "no gain",
    });
  }
  std::printf("Protocol P under the full deviation library:\n%s",
              table.render().c_str());
  std::printf("(honest row is the control: win rate == fair share)\n");
  return 0;
}
