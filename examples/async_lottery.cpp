// Proportional lottery in the *sequential* GOSSIP model, using the
// exploratory asynchronous Protocol P (core/async_protocol).
//
// Same scenario as token_lottery, but no global round synchronization: one
// random participant-agent wakes per step (think an opportunistic or
// low-power network).  Demonstrates the guard-band schedule in a realistic
// setting, including its costs (extra activations) and its limits (the
// rational analysis of the async variant is the paper's open problem #2).
//
//   ./async_lottery [--trials=300] [--slack=40] [--gamma=4]
//                   [--scheduler=sequential|poisson|partial-async:p=0.5|...]
#include <cstdio>
#include <map>
#include <vector>

#include "analysis/montecarlo.hpp"
#include "core/async_protocol.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  const std::vector<std::uint32_t> stakes = {40, 30, 20, 10};
  std::uint32_t total = 0;
  for (auto s : stakes) total += s;

  rfc::core::AsyncRunConfig config;
  config.n = total * 2;  // 200 agents.
  config.gamma = args.get_double("gamma", 4.0);
  config.slack = static_cast<std::uint32_t>(args.get_uint("slack", 40));
  config.scheduler =
      rfc::sim::SchedulerSpec::parse(args.get("scheduler", "sequential"));
  for (std::size_t p = 0; p < stakes.size(); ++p) {
    for (std::uint32_t t = 0; t < stakes[p] * 2; ++t) {
      config.colors.push_back(static_cast<rfc::core::Color>(p));
    }
  }

  const auto trials = args.get_uint("trials", 300);
  std::printf("asynchronous token lottery: n=%u agents, slack=%u, "
              "scheduler=%s, %llu draws\n",
              config.n, config.slack,
              config.scheduler.to_string().c_str(),
              static_cast<unsigned long long>(trials));

  std::map<rfc::core::Color, std::uint64_t> wins;
  std::uint64_t failures = 0;
  rfc::support::OnlineStats steps;
  const auto results =
      rfc::analysis::run_trials<rfc::core::AsyncRunResult>(
          trials, args.get_uint("seed", 37),
          [&config](std::uint64_t seed, std::size_t) {
            rfc::core::AsyncRunConfig cfg = config;
            cfg.seed = seed;
            return rfc::core::run_async_protocol(cfg);
          });
  for (const auto& r : results) {
    steps.add(static_cast<double>(r.steps));
    if (r.failed()) {
      ++failures;
    } else {
      ++wins[r.winner];
    }
  }

  const std::uint64_t successes = trials - failures;
  rfc::support::Table table(
      {"participant", "stake share", "observed win share", "95% CI"});
  for (std::size_t p = 0; p < stakes.size(); ++p) {
    const std::uint64_t w = wins.count(static_cast<rfc::core::Color>(p))
                                ? wins.at(static_cast<rfc::core::Color>(p))
                                : 0;
    const auto ci = rfc::support::wilson_interval(w, successes);
    table.add_row({
        "P" + std::to_string(p),
        rfc::support::Table::fmt_pct(
            static_cast<double>(stakes[p]) / total),
        rfc::support::Table::fmt_pct(
            successes ? static_cast<double>(w) / successes : 0.0),
        "[" + rfc::support::Table::fmt_pct(ci.lo) + ", " +
            rfc::support::Table::fmt_pct(ci.hi) + "]",
    });
  }
  std::printf("%s", table.render().c_str());
  std::printf("failed draws: %llu / %llu (guard bands absorb scheduling "
              "jitter; raise --slack if nonzero)\n",
              static_cast<unsigned long long>(failures),
              static_cast<unsigned long long>(trials));
  std::printf("mean cost: %.0f sequential activations (~%.1f per agent)\n",
              steps.mean(), steps.mean() / config.n);
  return 0;
}
