// Practical γ(α) tuning: how a deployer picks the round multiplier.
//
// The paper's guarantees hold "for a suitable choice of γ = γ(α)" but never
// instantiates the constant.  This example does what an operator would do:
// for a target fault tolerance α and network size n, binary-search the
// smallest γ whose empirical failure rate over a trial batch is zero, then
// report the safety margin and the cost (rounds, bits) it buys.
//
//   ./gamma_tuning [--n=256] [--alpha=0.3] [--trials=150] [--margin=1.25]
#include <cstdio>

#include "analysis/montecarlo.hpp"
#include "core/runner.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

double failure_rate(std::uint32_t n, double gamma, double alpha,
                    std::uint64_t trials, std::uint64_t seed) {
  rfc::core::RunConfig cfg;
  cfg.n = n;
  cfg.gamma = gamma;
  cfg.num_faulty = static_cast<std::uint32_t>(alpha * n);
  cfg.placement = cfg.num_faulty > 0 ? rfc::sim::FaultPlacement::kRandom
                                     : rfc::sim::FaultPlacement::kNone;
  std::uint64_t failures = 0;
  const auto results = rfc::analysis::run_trials<rfc::core::RunResult>(
      trials, seed,
      [&cfg](std::uint64_t s, std::size_t) {
        rfc::core::RunConfig run = cfg;
        run.seed = s;
        return rfc::core::run_protocol(run);
      });
  for (const auto& r : results) {
    if (r.failed()) ++failures;
  }
  return static_cast<double>(failures) / static_cast<double>(trials);
}

}  // namespace

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_uint("n", 256));
  const double alpha = args.get_double("alpha", 0.3);
  const auto trials = args.get_uint("trials", 150);
  const double margin = args.get_double("margin", 1.25);
  const auto seed = args.get_uint("seed", 31);

  std::printf("tuning gamma for n=%u, alpha=%.2f (%llu trials per probe)\n\n",
              n, alpha, static_cast<unsigned long long>(trials));

  // Bracket: grow gamma geometrically until a zero-failure batch.
  double hi = 1.0;
  rfc::support::Table probes({"gamma", "failure rate"});
  double rate = 1.0;
  while (hi <= 64.0) {
    rate = failure_rate(n, hi, alpha, trials, seed);
    probes.add_row({rfc::support::Table::fmt(hi, 2),
                    rfc::support::Table::fmt(rate, 3)});
    if (rate == 0.0) break;
    hi *= 2.0;
  }
  if (rate > 0.0) {
    std::printf("no gamma <= 64 reached zero failures — alpha too high?\n");
    return 1;
  }

  // Bisect [hi/2, hi] to ~5% precision.
  double lo = hi / 2.0;
  while ((hi - lo) / hi > 0.05) {
    const double mid = (lo + hi) / 2.0;
    const double r = failure_rate(n, mid, alpha, trials, seed);
    probes.add_row({rfc::support::Table::fmt(mid, 2),
                    rfc::support::Table::fmt(r, 3)});
    (r == 0.0 ? hi : lo) = mid;
  }
  std::printf("%s\n", probes.render("probe history").c_str());

  const double recommended = hi * margin;
  rfc::core::RunConfig final_cfg;
  final_cfg.n = n;
  final_cfg.gamma = recommended;
  final_cfg.seed = seed;
  const auto run = rfc::core::run_protocol(final_cfg);
  const auto params = rfc::core::ProtocolParams::make(n, recommended);
  std::printf("smallest zero-failure gamma ~ %.2f; recommended (x%.2f "
              "margin): %.2f\n",
              hi, margin, recommended);
  std::printf("cost at recommended gamma: %llu rounds, %.1f KiB total, "
              "largest message %llu bits\n",
              static_cast<unsigned long long>(params.total_rounds()),
              static_cast<double>(run.metrics.total_bits) / 8192.0,
              static_cast<unsigned long long>(run.metrics.max_message_bits));
  return 0;
}
