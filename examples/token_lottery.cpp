// Proportional token lottery — the crypto-currency-flavoured scenario the
// paper's introduction motivates (decentralized systems "such as ...
// e-commerce, and crypto-currency", [18]).
//
// A pool of participants holds tokens; one lottery round must select a
// winning participant with probability proportional to his stake, with no
// trusted coordinator, few messages, and robustness to a selfish coalition.
// Encoding: participant p with s_p tokens controls s_p agents (one per
// token), all supporting color p.  Fair consensus then picks participant p
// with probability s_p / Σ s — a proportional lottery.
//
//   ./token_lottery [--trials=2000] [--gamma=4]
#include <cstdio>
#include <vector>

#include "analysis/fairness.hpp"
#include "core/runner.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);

  // Five participants with unequal stakes (tokens).
  const std::vector<std::uint32_t> stakes = {40, 25, 20, 10, 5};
  std::uint32_t total = 0;
  for (auto s : stakes) total += s;

  rfc::core::RunConfig config;
  config.n = total * 4;  // 4 agents per token: n = 400.
  config.gamma = args.get_double("gamma", 4.0);
  config.seed = args.get_uint("seed", 23);
  config.colors.reserve(config.n);
  for (std::size_t p = 0; p < stakes.size(); ++p) {
    for (std::uint32_t t = 0; t < stakes[p] * 4; ++t) {
      config.colors.push_back(static_cast<rfc::core::Color>(p));
    }
  }

  const auto trials = args.get_uint("trials", 2000);
  std::printf("token lottery: %zu participants, %u tokens, n=%u agents, "
              "%llu draws\n",
              stakes.size(), total, config.n,
              static_cast<unsigned long long>(trials));

  const auto report = rfc::analysis::measure_fairness(config, trials);

  rfc::support::Table table(
      {"participant", "stake", "expected", "observed", "95% CI", "ok"});
  for (const auto& share : report.shares) {
    const auto p = static_cast<std::size_t>(share.color);
    table.add_row({
        "P" + std::to_string(p),
        std::to_string(stakes[p]) + " tok",
        rfc::support::Table::fmt_pct(share.expected),
        rfc::support::Table::fmt_pct(share.observed),
        "[" + rfc::support::Table::fmt_pct(share.ci.lo) + ", " +
            rfc::support::Table::fmt_pct(share.ci.hi) + "]",
        share.within_ci ? "yes" : "NO",
    });
  }
  std::printf("%s", table.render().c_str());
  std::printf("failed draws: %llu / %llu;  chi-square p = %.3f\n",
              static_cast<unsigned long long>(report.failures),
              static_cast<unsigned long long>(report.trials),
              report.chi.p_value);
  std::printf("mean cost per draw: %.0f rounds, %.0f KiB on the wire\n",
              report.rounds.mean(), report.total_bits.mean() / 8192.0);
  return 0;
}
